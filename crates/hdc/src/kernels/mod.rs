//! The unified word-level bit-kernel layer.
//!
//! Every hot loop in the SegHDC pipeline — XOR binding during encoding,
//! Hamming distances during clustering, the `AND` + popcount passes behind
//! bit-sliced centroid dot products, and the bit-serial carry adds of the
//! vertical-counter [`crate::Accumulator`] — reduces to a handful of
//! word-wide operations over packed `u64` slices. This module extracts those
//! operations into one dispatchable [`Kernels`] trait so a single selection
//! decides, for the whole stack, whether they run as portable scalar Rust or
//! as explicit SIMD (AVX2 on `x86_64`, NEON on `aarch64`).
//!
//! # Dispatch
//!
//! * [`scalar()`] always returns the portable reference implementation.
//! * [`auto()`] returns the best implementation for the running CPU: with
//!   the `simd` crate feature enabled it probes the CPU once (at first use)
//!   and picks AVX-512 (VPOPCNTDQ when present) / AVX2 / NEON when
//!   supported, otherwise it falls back to scalar. The environment variable
//!   `SEGHDC_KERNELS` (checked once, at the same first use) forces a
//!   specific ISA by name — any of [`KNOWN_ISAS`] — and falls back to the
//!   best available implementation (with a one-time warning on stderr) when
//!   the forced ISA is not supported by the host or the build.
//! * [`simd()`] returns the best SIMD implementation when one is compiled
//!   in *and* supported by the running CPU, `None` otherwise.
//! * [`available()`] lists every implementation usable on this host, best
//!   first; [`by_name()`] looks one up by its ISA name.
//!
//! All implementations are **bit-exact**: for identical inputs every kernel
//! returns identical integers (and mutates buffers identically) regardless
//! of ISA. The pipeline's float math consumes only these exact integers, so
//! segmentation labels are byte-identical across kernel selections — the
//! invariant pinned by the `kernel_equivalence` test suite.

use std::sync::OnceLock;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx512;
mod scalar;
#[cfg(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod simd;

pub use scalar::ScalarKernels;

/// Every ISA name a kernel implementation can report, best first within
/// each architecture — also the set of values `SEGHDC_KERNELS` accepts
/// (plus `auto`). Which of these are actually usable on the running host is
/// what [`available()`] reports.
pub const KNOWN_ISAS: &[&str] = &["avx512-vpopcnt", "avx512", "avx2", "neon", "scalar"];

/// Word-wide bit kernels over packed `u64` slices.
///
/// # Contract
///
/// * Paired slices (`dst`/`src`, `a`/`b`, plane/`row`) must have equal
///   lengths; callers validate dimensions before dispatch, so length
///   mismatches are caller bugs (checked with `debug_assert!`, unspecified
///   garbage in release).
/// * Slices are packed 64 bits per word, least-significant bit first. Bits
///   beyond a caller's logical dimension must already be masked to zero —
///   kernels operate on whole words and never re-mask tails.
/// * Implementations must be **bit-exact** with [`ScalarKernels`]: same
///   integers returned, same buffer contents written, for every input.
///   There is no tolerance; the scalar implementation is the specification.
/// * Implementations are stateless and must be `Send + Sync`; the same
///   kernel object is shared freely across threads.
pub trait Kernels: std::fmt::Debug + Send + Sync {
    /// A short ISA name for telemetry (`"scalar"`, `"avx2"`, `"neon"`).
    fn name(&self) -> &'static str;

    /// XORs `src` into `dst` element-wise (the HDC binding operation).
    fn xor_into(&self, dst: &mut [u64], src: &[u64]);

    /// Total number of set bits across `words`.
    fn popcount(&self, words: &[u64]) -> u64;

    /// Number of differing bits between `a` and `b` (`popcount(a ^ b)`).
    fn hamming(&self, a: &[u64], b: &[u64]) -> u64;

    /// Number of shared set bits between `a` and `b` (`popcount(a & b)`).
    fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64;

    /// Dot product between a bit-sliced integer vector and a binary row:
    /// `Σ_p 2^p · popcount(plane_p AND row)`.
    ///
    /// `planes` holds `planes.len() / words_per_plane` bit planes
    /// back-to-back, least-significant plane first; `row` holds
    /// `words_per_plane` words.
    fn plane_dot(&self, planes: &[u64], words_per_plane: usize, row: &[u64]) -> u64 {
        debug_assert_ne!(words_per_plane, 0);
        debug_assert_eq!(planes.len() % words_per_plane, 0);
        debug_assert_eq!(row.len(), words_per_plane);
        planes
            .chunks_exact(words_per_plane)
            .enumerate()
            .map(|(p, plane)| self.and_popcount(plane, row) << p)
            .sum()
    }

    /// Fused multi-centroid form of [`plane_dot`](Kernels::plane_dot): one
    /// row against several bit-sliced counters stacked back-to-back.
    ///
    /// `planes` holds the plane stacks of `out.len()` counters
    /// concatenated; `group_plane_counts[k]` is how many planes counter `k`
    /// contributes (so `planes.len()` is the sum of the counts times
    /// `words_per_plane`). Each `out[k]` is **accumulated** (`+=`) with the
    /// dot product of counter `k` and `row`, allowing callers to sum
    /// partial dots across cache-blocked plane chunks. Implementations load
    /// each row word once and carry the per-counter sums in registers.
    fn plane_dot_multi(
        &self,
        planes: &[u64],
        words_per_plane: usize,
        group_plane_counts: &[usize],
        row: &[u64],
        out: &mut [u64],
    ) {
        debug_assert_ne!(words_per_plane, 0);
        debug_assert_eq!(row.len(), words_per_plane);
        debug_assert_eq!(out.len(), group_plane_counts.len());
        debug_assert_eq!(
            planes.len(),
            group_plane_counts.iter().sum::<usize>() * words_per_plane
        );
        let mut offset = 0;
        for (slot, &count) in out.iter_mut().zip(group_plane_counts) {
            let end = offset + count * words_per_plane;
            *slot += self.plane_dot(&planes[offset..end], words_per_plane, row);
            offset = end;
        }
    }

    /// Fused multi-centroid form of [`hamming`](Kernels::hamming): one row
    /// against `out.len()` equal-width vectors stacked back-to-back in
    /// `stacked`. Writes each distance into `out[k]`, loading the row words
    /// once per vector at most (fused implementations keep them resident).
    fn hamming_multi(&self, row: &[u64], stacked: &[u64], out: &mut [u64]) {
        debug_assert_eq!(stacked.len(), row.len() * out.len());
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.hamming(row, &stacked[k * row.len()..][..row.len()]);
        }
    }

    /// Optional fused multi-centroid dot product over *expanded* counts:
    /// member `k`'s per-dimension counts occupy
    /// `counts[k * L..(k + 1) * L]` as `u16` lanes, with `L = row.len() * 64`
    /// (lanes past the logical dimension zero), and `out[k]` is
    /// **accumulated** (`+=`) with `Σ_i counts_k[i] · bit_i(row)` — the same
    /// integer [`plane_dot_multi`](Kernels::plane_dot_multi) produces from
    /// the bit-sliced form of the same counters.
    ///
    /// Returns `true` when the implementation handled the computation and
    /// `false` (leaving `out` untouched) when the caller should fall back
    /// to the bit-sliced path. The default declines: in the scalar domain
    /// bit-sliced `AND` + popcount is faster than a per-lane walk, so only
    /// SIMD implementations with a cheap bit→lane-mask expansion (AVX2's
    /// `vpmaddwd` over compare masks, AVX-512BW's native `u16` load masks)
    /// opt in. Implementations that opt in are bit-exact with the
    /// bit-sliced path but assume the caller's gates: every count at most
    /// `i16::MAX` and `L · i16::MAX` at most `i32::MAX`, so lane sums never
    /// overflow the 32-bit accumulators (`BitSlicedGroup` enforces both
    /// before choosing this path).
    fn counts_dot_multi(&self, counts: &[u16], row: &[u64], out: &mut [u64]) -> bool {
        debug_assert_eq!(counts.len(), row.len() * 64 * out.len());
        let _ = (counts, row, out);
        false
    }

    /// Bit-serial ripple-carry add of a binary vector into a vertical
    /// counter.
    ///
    /// `planes` is a little-endian stack of bit planes (`words_per_plane`
    /// words each) holding one integer counter per bit position; `carry`
    /// enters holding the binary vector to add and is used as the carry
    /// word buffer. Each plane consumes the incoming carry
    /// (`plane' = plane XOR carry`, `carry' = plane AND carry`) and the add
    /// stops early once the carry dies.
    ///
    /// Returns `true` when a carry survives past the last plane; the caller
    /// must then append `carry`'s contents as a new most-significant plane.
    /// On early exit `carry` is all zeros.
    fn bundle_add_planes(
        &self,
        planes: &mut [u64],
        words_per_plane: usize,
        carry: &mut [u64],
    ) -> bool {
        debug_assert_ne!(words_per_plane, 0);
        debug_assert_eq!(planes.len() % words_per_plane, 0);
        debug_assert_eq!(carry.len(), words_per_plane);
        for plane in planes.chunks_exact_mut(words_per_plane) {
            let mut live = 0u64;
            for (p, c) in plane.iter_mut().zip(carry.iter_mut()) {
                let overflow = *p & *c;
                *p ^= *c;
                *c = overflow;
                live |= overflow;
            }
            if live == 0 {
                return false;
            }
        }
        carry.iter().any(|&word| word != 0)
    }
}

/// The portable scalar reference kernels (always available).
pub fn scalar() -> &'static dyn Kernels {
    &ScalarKernels
}

/// Every kernel implementation usable on the running host, best first
/// (AVX-512 VPOPCNTDQ, then plain AVX-512, then AVX2/NEON, scalar last).
///
/// Only implementations both compiled in (`simd` feature, matching target
/// arch) and supported by the CPU's feature flags appear; the scalar
/// reference is always present.
pub fn available() -> Vec<&'static dyn Kernels> {
    let mut all: Vec<&'static dyn Kernels> = Vec::with_capacity(4);
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    all.extend(avx512::available());
    #[cfg(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")))]
    all.extend(simd::available());
    all.push(scalar());
    all
}

/// Looks up a usable implementation by ISA name (case-insensitive); `None`
/// when the name is unknown or the implementation is not usable here.
pub fn by_name(name: &str) -> Option<&'static dyn Kernels> {
    available()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// The best SIMD kernels, when compiled in (`simd` feature) and supported
/// by the running CPU; `None` otherwise.
pub fn simd() -> Option<&'static dyn Kernels> {
    available().into_iter().find(|k| k.name() != "scalar")
}

/// What a `SEGHDC_KERNELS` value asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
enum KernelRequest {
    /// Unset, empty, or `auto`: pick the best available implementation.
    Auto,
    /// A known ISA name (canonical spelling from [`KNOWN_ISAS`]).
    Force(&'static str),
    /// An unrecognised value, preserved for the warning message.
    Unknown(String),
}

fn parse_kernel_request(value: Option<&str>) -> KernelRequest {
    let Some(raw) = value else {
        return KernelRequest::Auto;
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("auto") {
        return KernelRequest::Auto;
    }
    match KNOWN_ISAS
        .iter()
        .find(|isa| isa.eq_ignore_ascii_case(trimmed))
    {
        Some(isa) => KernelRequest::Force(isa),
        None => KernelRequest::Unknown(trimmed.to_string()),
    }
}

/// The best kernels for the running CPU, probed once at first use.
///
/// Honours the `SEGHDC_KERNELS` environment variable (checked at the same
/// first use): any name in [`KNOWN_ISAS`] forces that implementation, and
/// `auto` (or unset/empty) picks the best available. A forced ISA that is
/// not usable on this host — or an unrecognised value — warns once on
/// stderr and falls back to the best available implementation.
pub fn auto() -> &'static dyn Kernels {
    static AUTO: OnceLock<&'static dyn Kernels> = OnceLock::new();
    *AUTO.get_or_init(|| {
        let best = available()[0];
        match parse_kernel_request(std::env::var("SEGHDC_KERNELS").ok().as_deref()) {
            KernelRequest::Auto => best,
            KernelRequest::Force(isa) => by_name(isa).unwrap_or_else(|| {
                eprintln!(
                    "seghdc: SEGHDC_KERNELS={isa} is not supported on this host/build; \
                     using {} instead",
                    best.name()
                );
                best
            }),
            KernelRequest::Unknown(value) => {
                eprintln!(
                    "seghdc: SEGHDC_KERNELS={value} is not a known ISA (expected auto or one \
                     of {KNOWN_ISAS:?}); using {} instead",
                    best.name()
                );
                best
            }
        }
    })
}

/// Iterates over the indices of the set bits of a packed word slice, in
/// ascending order.
///
/// This is the single definition of the set-bit walk that used to be
/// duplicated between `BinaryHypervector::iter_ones` and `HvRow::iter_ones`.
/// It is inherently scalar (one index out per set bit), so it lives beside
/// the kernels rather than on the trait.
pub fn iter_set_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut word = w;
        std::iter::from_fn(move || {
            if word == 0 {
                None
            } else {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * 64 + bit)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdcRng;

    fn words(len: usize, seed: u64) -> Vec<u64> {
        let mut rng = HdcRng::seed_from(seed);
        (0..len).map(|_| rng.next_word()).collect()
    }

    /// Every kernel implementation reachable in this build.
    fn implementations() -> Vec<&'static dyn Kernels> {
        let mut all = available();
        all.push(auto());
        all
    }

    #[test]
    fn scalar_env_override_forces_the_scalar_kernels() {
        // Only bites when the harness sets the variable (the CI
        // scalar-fallback job runs this suite under
        // `SEGHDC_KERNELS=scalar` on a SIMD build); without it the test is
        // a no-op rather than mutating process-global env state.
        if std::env::var("SEGHDC_KERNELS").is_ok_and(|v| v.eq_ignore_ascii_case("scalar")) {
            assert_eq!(auto().name(), "scalar");
        }
    }

    #[test]
    fn selection_is_consistent() {
        assert_eq!(scalar().name(), "scalar");
        let auto_name = auto().name();
        assert!(
            KNOWN_ISAS.contains(&auto_name),
            "unexpected kernel name {auto_name}"
        );
        if let Some(simd) = simd() {
            assert_ne!(simd.name(), "scalar");
        }
    }

    #[test]
    fn available_lists_known_isas_best_first_with_scalar_last() {
        let names: Vec<&str> = available().iter().map(|k| k.name()).collect();
        assert_eq!(names.last(), Some(&"scalar"));
        for name in &names {
            assert!(KNOWN_ISAS.contains(name), "unexpected ISA {name}");
        }
        // `available()` preserves KNOWN_ISAS' best-first order.
        let ranks: Vec<usize> = names
            .iter()
            .map(|n| KNOWN_ISAS.iter().position(|isa| isa == n).unwrap())
            .collect();
        assert!(ranks.windows(2).all(|w| w[0] < w[1]), "order: {names:?}");
    }

    #[test]
    fn by_name_round_trips_every_available_isa() {
        for kernels in available() {
            let found = by_name(kernels.name()).expect("available ISA must resolve");
            assert_eq!(found.name(), kernels.name());
            let upper = kernels.name().to_ascii_uppercase();
            assert_eq!(by_name(&upper).unwrap().name(), kernels.name());
        }
        assert!(by_name("riscv-vector").is_none());
    }

    #[test]
    fn kernel_request_parsing() {
        assert_eq!(parse_kernel_request(None), KernelRequest::Auto);
        assert_eq!(parse_kernel_request(Some("")), KernelRequest::Auto);
        assert_eq!(parse_kernel_request(Some("  ")), KernelRequest::Auto);
        assert_eq!(parse_kernel_request(Some("auto")), KernelRequest::Auto);
        assert_eq!(parse_kernel_request(Some("AUTO")), KernelRequest::Auto);
        assert_eq!(
            parse_kernel_request(Some("scalar")),
            KernelRequest::Force("scalar")
        );
        assert_eq!(
            parse_kernel_request(Some("AVX2")),
            KernelRequest::Force("avx2")
        );
        assert_eq!(
            parse_kernel_request(Some(" neon ")),
            KernelRequest::Force("neon")
        );
        assert_eq!(
            parse_kernel_request(Some("avx512")),
            KernelRequest::Force("avx512")
        );
        assert_eq!(
            parse_kernel_request(Some("Avx512-Vpopcnt")),
            KernelRequest::Force("avx512-vpopcnt")
        );
        assert_eq!(
            parse_kernel_request(Some("sse9")),
            KernelRequest::Unknown("sse9".to_string())
        );
    }

    #[test]
    fn popcount_and_hamming_match_scalar_for_all_lengths() {
        // Lengths straddle the SIMD lane width (4 words on AVX2, 2 on
        // NEON), including non-lane-multiple tails and the empty slice.
        for len in 0..40 {
            let a = words(len, 0xA + len as u64);
            let b = words(len, 0xB + len as u64);
            let reference = scalar();
            for kernels in implementations() {
                assert_eq!(kernels.popcount(&a), reference.popcount(&a), "len {len}");
                assert_eq!(
                    kernels.hamming(&a, &b),
                    reference.hamming(&a, &b),
                    "len {len}"
                );
                assert_eq!(
                    kernels.and_popcount(&a, &b),
                    reference.and_popcount(&a, &b),
                    "len {len}"
                );
            }
        }
    }

    #[test]
    fn xor_into_matches_scalar() {
        for len in 0..20 {
            let src = words(len, 7);
            let base = words(len, 11);
            let mut expected = base.clone();
            scalar().xor_into(&mut expected, &src);
            for kernels in implementations() {
                let mut buffer = base.clone();
                kernels.xor_into(&mut buffer, &src);
                assert_eq!(buffer, expected, "len {len}");
            }
        }
    }

    #[test]
    fn plane_dot_matches_a_naive_count_walk() {
        let wpp = 5usize;
        let planes = words(3 * wpp, 21);
        let row = words(wpp, 22);
        let mut naive = 0u64;
        for (p, plane) in planes.chunks_exact(wpp).enumerate() {
            for (pw, rw) in plane.iter().zip(&row) {
                naive += u64::from((pw & rw).count_ones()) << p;
            }
        }
        for kernels in implementations() {
            assert_eq!(kernels.plane_dot(&planes, wpp, &row), naive);
        }
    }

    #[test]
    fn plane_dot_multi_accumulates_per_group_dots() {
        let wpp = 5usize;
        let counts = [3usize, 0, 1, 4];
        let total: usize = counts.iter().sum();
        let planes = words(total * wpp, 31);
        let row = words(wpp, 32);

        // Per-group reference through the scalar `plane_dot` spec.
        let mut expected = vec![10u64; counts.len()];
        let mut offset = 0;
        for (slot, &count) in expected.iter_mut().zip(&counts) {
            let end = offset + count * wpp;
            *slot += scalar().plane_dot(&planes[offset..end], wpp, &row);
            offset = end;
        }

        for kernels in implementations() {
            // Pre-seeded output: the contract is `+=`, not overwrite.
            let mut out = vec![10u64; counts.len()];
            kernels.plane_dot_multi(&planes, wpp, &counts, &row, &mut out);
            assert_eq!(out, expected, "{}", kernels.name());
        }
    }

    #[test]
    fn counts_dot_multi_accumulates_or_leaves_out_untouched() {
        let words_per_row = 3usize;
        let members = 5usize; // odd count -> exercises a partial block
        let lanes = words_per_row * 64;
        let row = words(words_per_row, 61);
        // Counts spanning the whole admissible range, `i16::MAX` included.
        let counts: Vec<u16> = (0..members * lanes)
            .map(|i| {
                let mixed = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17);
                (mixed % (i16::MAX as u64 + 1)) as u16
            })
            .collect();
        let expected: Vec<u64> = (0..members)
            .map(|k| {
                let member = &counts[k * lanes..(k + 1) * lanes];
                // Pre-seeded by 10: the contract is `+=`, not overwrite.
                10 + member
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| (row[i / 64] >> (i % 64)) & 1 == 1)
                    .map(|(_, &count)| u64::from(count))
                    .sum::<u64>()
            })
            .collect();
        let seeded = vec![10u64; members];
        for kernels in implementations() {
            let mut out = seeded.clone();
            if kernels.counts_dot_multi(&counts, &row, &mut out) {
                assert_eq!(out, expected, "{}", kernels.name());
            } else {
                assert_eq!(out, seeded, "{} declined but wrote", kernels.name());
            }
        }
        // The scalar reference always declines: bit-sliced AND + popcount
        // beats a scalar per-lane walk, so there is no scalar fast path.
        let mut out = seeded.clone();
        assert!(!scalar().counts_dot_multi(&counts, &row, &mut out));
        assert_eq!(out, seeded);
    }

    #[test]
    fn hamming_multi_matches_per_vector_hamming() {
        for width in [0usize, 1, 3, 8, 17, 33] {
            let k = 5usize;
            let row = words(width, 41);
            let stacked = words(k * width, 42);
            let expected: Vec<u64> = (0..k)
                .map(|c| scalar().hamming(&row, &stacked[c * width..][..width]))
                .collect();
            for kernels in implementations() {
                let mut out = vec![0u64; k];
                kernels.hamming_multi(&row, &stacked, &mut out);
                assert_eq!(out, expected, "{} width {width}", kernels.name());
            }
        }
    }

    #[test]
    fn bundle_add_planes_counts_in_binary() {
        let wpp = 3usize;
        for kernels in implementations() {
            let mut planes: Vec<u64> = Vec::new();
            let ones = vec![u64::MAX; wpp];
            // Add the all-ones vector seven times; every bit counter must
            // read 7 (planes 0..3 all ones, never a fourth plane).
            for round in 0..7 {
                let mut carry = ones.clone();
                let overflow = kernels.bundle_add_planes(&mut planes, wpp, &mut carry);
                if overflow {
                    planes.extend_from_slice(&carry);
                }
                let expected_planes =
                    usize::BITS as usize - ((round + 1) as usize).leading_zeros() as usize;
                assert_eq!(planes.len() / wpp, expected_planes, "round {round}");
            }
            assert_eq!(planes.len() / wpp, 3);
            assert!(planes.iter().all(|&w| w == u64::MAX), "{}", kernels.name());
        }
    }

    #[test]
    fn bundle_add_planes_matches_scalar_on_random_input() {
        let wpp = 7usize;
        for trial in 0..16u64 {
            let base_planes = words(4 * wpp, 100 + trial);
            let row = words(wpp, 200 + trial);
            let mut scalar_planes = base_planes.clone();
            let mut scalar_carry = row.clone();
            let scalar_overflow =
                scalar().bundle_add_planes(&mut scalar_planes, wpp, &mut scalar_carry);
            for kernels in implementations() {
                let mut planes = base_planes.clone();
                let mut carry = row.clone();
                let overflow = kernels.bundle_add_planes(&mut planes, wpp, &mut carry);
                assert_eq!(overflow, scalar_overflow, "trial {trial}");
                assert_eq!(planes, scalar_planes, "trial {trial}");
                assert_eq!(carry, scalar_carry, "trial {trial}");
            }
        }
    }

    #[test]
    fn iter_set_bits_walks_ascending() {
        let w = [0b1011u64, 0, 1u64 << 63];
        let indices: Vec<usize> = iter_set_bits(&w).collect();
        assert_eq!(indices, vec![0, 1, 3, 191]);
        assert_eq!(iter_set_bits(&[]).count(), 0);
    }
}
