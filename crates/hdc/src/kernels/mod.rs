//! The unified word-level bit-kernel layer.
//!
//! Every hot loop in the SegHDC pipeline — XOR binding during encoding,
//! Hamming distances during clustering, the `AND` + popcount passes behind
//! bit-sliced centroid dot products, and the bit-serial carry adds of the
//! vertical-counter [`crate::Accumulator`] — reduces to a handful of
//! word-wide operations over packed `u64` slices. This module extracts those
//! operations into one dispatchable [`Kernels`] trait so a single selection
//! decides, for the whole stack, whether they run as portable scalar Rust or
//! as explicit SIMD (AVX2 on `x86_64`, NEON on `aarch64`).
//!
//! # Dispatch
//!
//! * [`scalar()`] always returns the portable reference implementation.
//! * [`auto()`] returns the best implementation for the running CPU: with
//!   the `simd` crate feature enabled it probes the CPU once (at first use)
//!   and picks AVX2/NEON when supported, otherwise it falls back to scalar.
//!   Setting the environment variable `SEGHDC_KERNELS=scalar` forces the
//!   scalar kernels even when SIMD is available (checked once, at the same
//!   first use).
//! * [`simd()`] returns the SIMD implementation when one is compiled in
//!   *and* supported by the running CPU, `None` otherwise.
//!
//! All implementations are **bit-exact**: for identical inputs every kernel
//! returns identical integers (and mutates buffers identically) regardless
//! of ISA. The pipeline's float math consumes only these exact integers, so
//! segmentation labels are byte-identical across kernel selections — the
//! invariant pinned by the `kernel_equivalence` test suite.

use std::sync::OnceLock;

mod scalar;
#[cfg(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod simd;

pub use scalar::ScalarKernels;

/// Word-wide bit kernels over packed `u64` slices.
///
/// # Contract
///
/// * Paired slices (`dst`/`src`, `a`/`b`, plane/`row`) must have equal
///   lengths; callers validate dimensions before dispatch, so length
///   mismatches are caller bugs (checked with `debug_assert!`, unspecified
///   garbage in release).
/// * Slices are packed 64 bits per word, least-significant bit first. Bits
///   beyond a caller's logical dimension must already be masked to zero —
///   kernels operate on whole words and never re-mask tails.
/// * Implementations must be **bit-exact** with [`ScalarKernels`]: same
///   integers returned, same buffer contents written, for every input.
///   There is no tolerance; the scalar implementation is the specification.
/// * Implementations are stateless and must be `Send + Sync`; the same
///   kernel object is shared freely across threads.
pub trait Kernels: std::fmt::Debug + Send + Sync {
    /// A short ISA name for telemetry (`"scalar"`, `"avx2"`, `"neon"`).
    fn name(&self) -> &'static str;

    /// XORs `src` into `dst` element-wise (the HDC binding operation).
    fn xor_into(&self, dst: &mut [u64], src: &[u64]);

    /// Total number of set bits across `words`.
    fn popcount(&self, words: &[u64]) -> u64;

    /// Number of differing bits between `a` and `b` (`popcount(a ^ b)`).
    fn hamming(&self, a: &[u64], b: &[u64]) -> u64;

    /// Number of shared set bits between `a` and `b` (`popcount(a & b)`).
    fn and_popcount(&self, a: &[u64], b: &[u64]) -> u64;

    /// Dot product between a bit-sliced integer vector and a binary row:
    /// `Σ_p 2^p · popcount(plane_p AND row)`.
    ///
    /// `planes` holds `planes.len() / words_per_plane` bit planes
    /// back-to-back, least-significant plane first; `row` holds
    /// `words_per_plane` words.
    fn plane_dot(&self, planes: &[u64], words_per_plane: usize, row: &[u64]) -> u64 {
        debug_assert_ne!(words_per_plane, 0);
        debug_assert_eq!(planes.len() % words_per_plane, 0);
        debug_assert_eq!(row.len(), words_per_plane);
        planes
            .chunks_exact(words_per_plane)
            .enumerate()
            .map(|(p, plane)| self.and_popcount(plane, row) << p)
            .sum()
    }

    /// Bit-serial ripple-carry add of a binary vector into a vertical
    /// counter.
    ///
    /// `planes` is a little-endian stack of bit planes (`words_per_plane`
    /// words each) holding one integer counter per bit position; `carry`
    /// enters holding the binary vector to add and is used as the carry
    /// word buffer. Each plane consumes the incoming carry
    /// (`plane' = plane XOR carry`, `carry' = plane AND carry`) and the add
    /// stops early once the carry dies.
    ///
    /// Returns `true` when a carry survives past the last plane; the caller
    /// must then append `carry`'s contents as a new most-significant plane.
    /// On early exit `carry` is all zeros.
    fn bundle_add_planes(
        &self,
        planes: &mut [u64],
        words_per_plane: usize,
        carry: &mut [u64],
    ) -> bool {
        debug_assert_ne!(words_per_plane, 0);
        debug_assert_eq!(planes.len() % words_per_plane, 0);
        debug_assert_eq!(carry.len(), words_per_plane);
        for plane in planes.chunks_exact_mut(words_per_plane) {
            let mut live = 0u64;
            for (p, c) in plane.iter_mut().zip(carry.iter_mut()) {
                let overflow = *p & *c;
                *p ^= *c;
                *c = overflow;
                live |= overflow;
            }
            if live == 0 {
                return false;
            }
        }
        carry.iter().any(|&word| word != 0)
    }
}

/// The portable scalar reference kernels (always available).
pub fn scalar() -> &'static dyn Kernels {
    &ScalarKernels
}

/// The SIMD kernels, when compiled in (`simd` feature) and supported by the
/// running CPU; `None` otherwise.
pub fn simd() -> Option<&'static dyn Kernels> {
    #[cfg(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        simd::detect()
    }
    #[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        None
    }
}

/// The best kernels for the running CPU, probed once at first use.
///
/// Returns the SIMD implementation when available (see [`simd()`]), unless
/// the `SEGHDC_KERNELS=scalar` environment variable forces the scalar path;
/// falls back to [`scalar()`] otherwise.
pub fn auto() -> &'static dyn Kernels {
    static AUTO: OnceLock<&'static dyn Kernels> = OnceLock::new();
    *AUTO.get_or_init(|| {
        if std::env::var("SEGHDC_KERNELS").is_ok_and(|v| v.eq_ignore_ascii_case("scalar")) {
            return scalar();
        }
        simd().unwrap_or_else(scalar)
    })
}

/// Iterates over the indices of the set bits of a packed word slice, in
/// ascending order.
///
/// This is the single definition of the set-bit walk that used to be
/// duplicated between `BinaryHypervector::iter_ones` and `HvRow::iter_ones`.
/// It is inherently scalar (one index out per set bit), so it lives beside
/// the kernels rather than on the trait.
pub fn iter_set_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut word = w;
        std::iter::from_fn(move || {
            if word == 0 {
                None
            } else {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * 64 + bit)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdcRng;

    fn words(len: usize, seed: u64) -> Vec<u64> {
        let mut rng = HdcRng::seed_from(seed);
        (0..len).map(|_| rng.next_word()).collect()
    }

    /// Every kernel implementation reachable in this build.
    fn implementations() -> Vec<&'static dyn Kernels> {
        let mut all = vec![scalar()];
        if let Some(simd) = simd() {
            all.push(simd);
        }
        all.push(auto());
        all
    }

    #[test]
    fn scalar_env_override_forces_the_scalar_kernels() {
        // Only bites when the harness sets the variable (the CI
        // scalar-fallback job runs this suite under
        // `SEGHDC_KERNELS=scalar` on a SIMD build); without it the test is
        // a no-op rather than mutating process-global env state.
        if std::env::var("SEGHDC_KERNELS").is_ok_and(|v| v.eq_ignore_ascii_case("scalar")) {
            assert_eq!(auto().name(), "scalar");
        }
    }

    #[test]
    fn selection_is_consistent() {
        assert_eq!(scalar().name(), "scalar");
        let auto_name = auto().name();
        assert!(
            ["scalar", "avx2", "neon"].contains(&auto_name),
            "unexpected kernel name {auto_name}"
        );
        if let Some(simd) = simd() {
            assert_ne!(simd.name(), "scalar");
        }
    }

    #[test]
    fn popcount_and_hamming_match_scalar_for_all_lengths() {
        // Lengths straddle the SIMD lane width (4 words on AVX2, 2 on
        // NEON), including non-lane-multiple tails and the empty slice.
        for len in 0..40 {
            let a = words(len, 0xA + len as u64);
            let b = words(len, 0xB + len as u64);
            let reference = scalar();
            for kernels in implementations() {
                assert_eq!(kernels.popcount(&a), reference.popcount(&a), "len {len}");
                assert_eq!(
                    kernels.hamming(&a, &b),
                    reference.hamming(&a, &b),
                    "len {len}"
                );
                assert_eq!(
                    kernels.and_popcount(&a, &b),
                    reference.and_popcount(&a, &b),
                    "len {len}"
                );
            }
        }
    }

    #[test]
    fn xor_into_matches_scalar() {
        for len in 0..20 {
            let src = words(len, 7);
            let base = words(len, 11);
            let mut expected = base.clone();
            scalar().xor_into(&mut expected, &src);
            for kernels in implementations() {
                let mut buffer = base.clone();
                kernels.xor_into(&mut buffer, &src);
                assert_eq!(buffer, expected, "len {len}");
            }
        }
    }

    #[test]
    fn plane_dot_matches_a_naive_count_walk() {
        let wpp = 5usize;
        let planes = words(3 * wpp, 21);
        let row = words(wpp, 22);
        let mut naive = 0u64;
        for (p, plane) in planes.chunks_exact(wpp).enumerate() {
            for (pw, rw) in plane.iter().zip(&row) {
                naive += u64::from((pw & rw).count_ones()) << p;
            }
        }
        for kernels in implementations() {
            assert_eq!(kernels.plane_dot(&planes, wpp, &row), naive);
        }
    }

    #[test]
    fn bundle_add_planes_counts_in_binary() {
        let wpp = 3usize;
        for kernels in implementations() {
            let mut planes: Vec<u64> = Vec::new();
            let ones = vec![u64::MAX; wpp];
            // Add the all-ones vector seven times; every bit counter must
            // read 7 (planes 0..3 all ones, never a fourth plane).
            for round in 0..7 {
                let mut carry = ones.clone();
                let overflow = kernels.bundle_add_planes(&mut planes, wpp, &mut carry);
                if overflow {
                    planes.extend_from_slice(&carry);
                }
                let expected_planes =
                    usize::BITS as usize - ((round + 1) as usize).leading_zeros() as usize;
                assert_eq!(planes.len() / wpp, expected_planes, "round {round}");
            }
            assert_eq!(planes.len() / wpp, 3);
            assert!(planes.iter().all(|&w| w == u64::MAX), "{}", kernels.name());
        }
    }

    #[test]
    fn bundle_add_planes_matches_scalar_on_random_input() {
        let wpp = 7usize;
        for trial in 0..16u64 {
            let base_planes = words(4 * wpp, 100 + trial);
            let row = words(wpp, 200 + trial);
            let mut scalar_planes = base_planes.clone();
            let mut scalar_carry = row.clone();
            let scalar_overflow =
                scalar().bundle_add_planes(&mut scalar_planes, wpp, &mut scalar_carry);
            for kernels in implementations() {
                let mut planes = base_planes.clone();
                let mut carry = row.clone();
                let overflow = kernels.bundle_add_planes(&mut planes, wpp, &mut carry);
                assert_eq!(overflow, scalar_overflow, "trial {trial}");
                assert_eq!(planes, scalar_planes, "trial {trial}");
                assert_eq!(carry, scalar_carry, "trial {trial}");
            }
        }
    }

    #[test]
    fn iter_set_bits_walks_ascending() {
        let w = [0b1011u64, 0, 1u64 << 63];
        let indices: Vec<usize> = iter_set_bits(&w).collect();
        assert_eq!(indices, vec![0, 1, 3, 191]);
        assert_eq!(iter_set_bits(&[]).count(), 0);
    }
}
