use crate::{BinaryHypervector, HdcError, Result};

/// An integer "bundled" hypervector: the element-wise sum of binary
/// hypervectors.
///
/// The SegHDC clusterer updates each K-Means centroid by summing all pixel
/// hypervectors assigned to it. Because cosine distance ignores vector
/// length, the raw integer sum can be compared against binary pixel vectors
/// directly without normalisation — exactly the argument given in §III-4 of
/// the paper for choosing cosine over Hamming distance.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), hdc::HdcError> {
/// use hdc::{Accumulator, BinaryHypervector, HdcRng};
///
/// let mut rng = HdcRng::seed_from(1);
/// let a = BinaryHypervector::random(512, &mut rng);
/// let mut acc = Accumulator::zeros(512)?;
/// acc.add(&a)?;
/// acc.add(&a)?;
/// // A centroid made only of copies of `a` is maximally similar to `a`.
/// assert!((acc.cosine_similarity(&a)? - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Accumulator {
    counts: Vec<u32>,
    items: usize,
}

impl Accumulator {
    /// Creates an all-zero accumulator of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`.
    pub fn zeros(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        Ok(Self {
            counts: vec![0; dim],
            items: 0,
        })
    }

    /// Creates an accumulator seeded with a single binary hypervector.
    pub fn from_binary(hv: &BinaryHypervector) -> Self {
        let mut acc = Self {
            counts: vec![0; hv.dim()],
            items: 0,
        };
        acc.add(hv).expect("dimensions match by construction");
        acc
    }

    /// Returns the dimension of the accumulator.
    pub fn dim(&self) -> usize {
        self.counts.len()
    }

    /// Returns the number of hypervectors accumulated so far.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Returns the per-element counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Resets the accumulator to all zeros.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.items = 0;
    }

    /// Adds a binary hypervector element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn add(&mut self, hv: &BinaryHypervector) -> Result<()> {
        if hv.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                left: self.dim(),
                right: hv.dim(),
            });
        }
        for idx in hv.iter_ones() {
            self.counts[idx] += 1;
        }
        self.items += 1;
        Ok(())
    }

    /// Merges another accumulator into this one.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if other.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.items += other.items;
        Ok(())
    }

    /// Dot product with a binary hypervector (sum of counts at set bits).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn dot(&self, hv: &BinaryHypervector) -> Result<u64> {
        if hv.dim() != self.dim() {
            return Err(HdcError::DimensionMismatch {
                left: self.dim(),
                right: hv.dim(),
            });
        }
        Ok(hv.iter_ones().map(|i| u64::from(self.counts[i])).sum())
    }

    /// Euclidean norm of the integer count vector.
    pub fn norm(&self) -> f64 {
        self.counts
            .iter()
            .map(|&c| f64::from(c) * f64::from(c))
            .sum::<f64>()
            .sqrt()
    }

    /// Cosine similarity between this accumulator and a binary hypervector,
    /// as defined in Eq. 7 of the SegHDC paper.
    ///
    /// Zero vectors have zero similarity with everything by convention.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_similarity(&self, hv: &BinaryHypervector) -> Result<f64> {
        let dot = self.dot(hv)? as f64;
        let n_acc = self.norm();
        let n_hv = (hv.count_ones() as f64).sqrt();
        if n_acc == 0.0 || n_hv == 0.0 {
            return Ok(0.0);
        }
        Ok(dot / (n_acc * n_hv))
    }

    /// Cosine distance (`1 - cosine_similarity`), the clustering metric used
    /// by SegHDC.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_distance(&self, hv: &BinaryHypervector) -> Result<f64> {
        Ok(1.0 - self.cosine_similarity(hv)?)
    }

    /// Thresholds the accumulator back into a binary hypervector with the
    /// classical HDC majority rule: a bit is one if it was set in more than
    /// half of the accumulated vectors (ties broken towards zero).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if nothing has been accumulated.
    pub fn to_majority(&self) -> Result<BinaryHypervector> {
        if self.items == 0 {
            return Err(HdcError::EmptyInput);
        }
        let threshold = self.items as u32;
        let bits: Vec<bool> = self.counts.iter().map(|&c| 2 * c > threshold).collect();
        BinaryHypervector::from_bits(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdcRng;

    #[test]
    fn zero_dim_rejected() {
        assert_eq!(Accumulator::zeros(0).unwrap_err(), HdcError::ZeroDimension);
    }

    #[test]
    fn add_counts_set_bits() {
        let hv = BinaryHypervector::from_bits(&[true, false, true, true]).unwrap();
        let mut acc = Accumulator::zeros(4).unwrap();
        acc.add(&hv).unwrap();
        acc.add(&hv).unwrap();
        assert_eq!(acc.counts(), &[2, 0, 2, 2]);
        assert_eq!(acc.items(), 2);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let hv = BinaryHypervector::zeros(8).unwrap();
        let mut acc = Accumulator::zeros(4).unwrap();
        assert!(acc.add(&hv).is_err());
        assert!(acc.dot(&hv).is_err());
        assert!(acc.cosine_similarity(&hv).is_err());
        let other = Accumulator::zeros(8).unwrap();
        assert!(acc.merge(&other).is_err());
    }

    #[test]
    fn cosine_similarity_matches_manual_computation() {
        let hv = BinaryHypervector::from_bits(&[true, true, false, false]).unwrap();
        let mut acc = Accumulator::zeros(4).unwrap();
        acc.add(&BinaryHypervector::from_bits(&[true, false, true, false]).unwrap())
            .unwrap();
        acc.add(&BinaryHypervector::from_bits(&[true, true, false, false]).unwrap())
            .unwrap();
        // counts = [2, 1, 1, 0]; dot with hv = 2 + 1 = 3
        // |acc| = sqrt(4+1+1) = sqrt(6); |hv| = sqrt(2)
        let expected = 3.0 / (6.0f64.sqrt() * 2.0f64.sqrt());
        let got = acc.cosine_similarity(&hv).unwrap();
        assert!((got - expected).abs() < 1e-12);
        assert!((acc.cosine_distance(&hv).unwrap() - (1.0 - expected)).abs() < 1e-12);
    }

    #[test]
    fn scaling_invariance_of_cosine() {
        // Adding the same member set twice must not change the cosine
        // similarity — the property the paper uses to justify skipping
        // centroid normalisation.
        let mut rng = HdcRng::seed_from(3);
        let members: Vec<BinaryHypervector> =
            (0..5).map(|_| BinaryHypervector::random(1024, &mut rng)).collect();
        let probe = BinaryHypervector::random(1024, &mut rng);
        let mut once = Accumulator::zeros(1024).unwrap();
        let mut twice = Accumulator::zeros(1024).unwrap();
        for m in &members {
            once.add(m).unwrap();
            twice.add(m).unwrap();
            twice.add(m).unwrap();
        }
        let s1 = once.cosine_similarity(&probe).unwrap();
        let s2 = twice.cosine_similarity(&probe).unwrap();
        assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential_adds() {
        let mut rng = HdcRng::seed_from(4);
        let hvs: Vec<BinaryHypervector> =
            (0..6).map(|_| BinaryHypervector::random(256, &mut rng)).collect();
        let mut all = Accumulator::zeros(256).unwrap();
        for hv in &hvs {
            all.add(hv).unwrap();
        }
        let mut left = Accumulator::zeros(256).unwrap();
        let mut right = Accumulator::zeros(256).unwrap();
        for hv in &hvs[..3] {
            left.add(hv).unwrap();
        }
        for hv in &hvs[3..] {
            right.add(hv).unwrap();
        }
        left.merge(&right).unwrap();
        assert_eq!(left, all);
    }

    #[test]
    fn majority_of_identical_vectors_is_that_vector() {
        let mut rng = HdcRng::seed_from(5);
        let hv = BinaryHypervector::random(300, &mut rng);
        let mut acc = Accumulator::zeros(300).unwrap();
        for _ in 0..3 {
            acc.add(&hv).unwrap();
        }
        assert_eq!(acc.to_majority().unwrap(), hv);
    }

    #[test]
    fn majority_of_empty_accumulator_errors() {
        let acc = Accumulator::zeros(16).unwrap();
        assert_eq!(acc.to_majority().unwrap_err(), HdcError::EmptyInput);
    }

    #[test]
    fn clear_resets_state() {
        let hv = BinaryHypervector::ones(32).unwrap();
        let mut acc = Accumulator::from_binary(&hv);
        assert_eq!(acc.items(), 1);
        acc.clear();
        assert_eq!(acc.items(), 0);
        assert!(acc.counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn cosine_with_zero_operands_is_zero() {
        let acc = Accumulator::zeros(16).unwrap();
        let hv = BinaryHypervector::ones(16).unwrap();
        assert_eq!(acc.cosine_similarity(&hv).unwrap(), 0.0);
        let zero_hv = BinaryHypervector::zeros(16).unwrap();
        let nonzero = Accumulator::from_binary(&hv);
        assert_eq!(nonzero.cosine_similarity(&zero_hv).unwrap(), 0.0);
    }
}
