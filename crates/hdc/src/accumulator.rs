use crate::kernels::{self, Kernels};
use crate::{BinaryHypervector, HdcError, HvRow, Result};

/// An integer "bundled" hypervector: the element-wise sum of binary
/// hypervectors, stored as a **vertical counter**.
///
/// The SegHDC clusterer updates each K-Means centroid by summing all pixel
/// hypervectors assigned to it. Because cosine distance ignores vector
/// length, the raw integer sum can be compared against binary pixel vectors
/// directly without normalisation — exactly the argument given in §III-4 of
/// the paper for choosing cosine over Hamming distance.
///
/// # Representation
///
/// The per-element counts are stored transposed, as a little-endian stack
/// of packed binary *planes*: bit `i` of plane `p` is bit `p` of
/// `counts[i]`. Adding a binary hypervector is then a word-parallel
/// bit-serial ripple-carry add ([`Kernels::bundle_add_planes`]) instead of
/// one counter increment per set bit, dot products decompose into
/// word-wide `AND` + popcount passes ([`Kernels::plane_dot`]), and with `n`
/// accumulated vectors there are at most `⌈log2(n + 1)⌉` planes — so a
/// bundle costs ~`dim / 64 · log2(n)` words instead of `4 · dim` bytes of
/// `u32` counts. Every operation dispatches through the
/// [`kernels`](crate::kernels) layer (`_with` variants take an explicit
/// selection; the plain methods use [`kernels::auto()`]).
///
/// The arithmetic is exact integer arithmetic in every representation, so
/// results are identical to a plain `u32`-counts implementation; use
/// [`counts`](Self::counts) to materialise that form.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), hdc::HdcError> {
/// use hdc::{Accumulator, BinaryHypervector, HdcRng};
///
/// let mut rng = HdcRng::seed_from(1);
/// let a = BinaryHypervector::random(512, &mut rng);
/// let mut acc = Accumulator::zeros(512)?;
/// acc.add(&a)?;
/// acc.add(&a)?;
/// // A centroid made only of copies of `a` is maximally similar to `a`.
/// assert!((acc.cosine_similarity(&a)? - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
// Serde caveat: the workspace's vendored `serde_derive` stub expands to
// nothing, so this derive only keeps the attribute position compiling.
// When the real serde is restored (see ROADMAP), `Accumulator` needs a
// custom impl that (a) skips the `carry` scratch buffer — it is excluded
// from `PartialEq` and would make logically-equal values serialize
// differently — and (b) decides a migration story for the pre-0.4
// `counts: Vec<u32>` wire layout this plane representation replaced.
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Accumulator {
    dim: usize,
    words_per_plane: usize,
    /// Plane-major packed counter bits: `planes[p * words_per_plane + w]`.
    /// Canonical form: the most-significant plane, when present, is
    /// non-zero. Tail bits beyond `dim` are always zero (inherited from the
    /// masked tails of every added vector).
    planes: Vec<u64>,
    /// Carry scratch for the ripple add, kept allocated between adds so
    /// bundling a row never allocates.
    carry: Vec<u64>,
    items: usize,
}

impl std::fmt::Debug for Accumulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Accumulator")
            .field("dim", &self.dim)
            .field("items", &self.items)
            .field("planes", &self.plane_count())
            .finish()
    }
}

impl PartialEq for Accumulator {
    fn eq(&self, other: &Self) -> bool {
        // The carry buffer is scratch; equality is the logical counter
        // state. Plane vectors are canonical (binary representation is
        // unique and the top plane is non-zero), so comparing them compares
        // the counts.
        self.dim == other.dim && self.items == other.items && self.planes == other.planes
    }
}

impl Eq for Accumulator {}

impl Accumulator {
    /// Creates an all-zero accumulator of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`.
    pub fn zeros(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        let words_per_plane = dim.div_ceil(64);
        Ok(Self {
            dim,
            words_per_plane,
            planes: Vec::new(),
            carry: vec![0; words_per_plane],
            items: 0,
        })
    }

    /// Creates an accumulator seeded with a single binary hypervector.
    pub fn from_binary(hv: &BinaryHypervector) -> Self {
        let mut acc = Self::zeros(hv.dim()).expect("hypervector dimensions are non-zero");
        acc.add(hv).expect("dimensions match by construction");
        acc
    }

    /// Returns the dimension of the accumulator.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the number of hypervectors accumulated so far.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Number of counter bit planes currently held
    /// (`⌈log2(max_count + 1)⌉`).
    pub fn plane_count(&self) -> usize {
        self.planes.len() / self.words_per_plane
    }

    /// Materialises the per-element counts.
    ///
    /// The counter is stored bit-sliced (see the type docs), so this
    /// allocates and transposes; use it for inspection and tests, not in
    /// hot loops.
    pub fn counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.dim];
        for (p, plane) in self.planes.chunks_exact(self.words_per_plane).enumerate() {
            for index in kernels::iter_set_bits(plane) {
                counts[index] += 1u32 << p;
            }
        }
        counts
    }

    /// Resets the accumulator to all zeros.
    pub fn clear(&mut self) {
        self.planes.clear();
        self.items = 0;
    }

    /// Reshapes the accumulator in place to dimension `dim`, zeroing every
    /// count.
    ///
    /// Like [`crate::HvMatrix::reset`], the backing allocations are reused
    /// whenever their capacity suffices, which makes a set of accumulators
    /// usable as bounded scratch across a sequence of differently-sized
    /// batches (the tiled segmentation arena resets its per-cluster bundle
    /// accumulators once per tile instead of allocating per tile).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`.
    pub fn reset(&mut self, dim: usize) -> Result<()> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        self.dim = dim;
        self.words_per_plane = dim.div_ceil(64);
        self.planes.clear();
        self.carry.clear();
        self.carry.resize(self.words_per_plane, 0);
        self.items = 0;
        Ok(())
    }

    /// Heap bytes held by the plane and carry buffers (their capacity, not
    /// their length) — the scratch-accounting companion of
    /// [`crate::HvMatrix::capacity_bytes`].
    pub fn heap_bytes(&self) -> usize {
        (self.planes.capacity() + self.carry.capacity()) * std::mem::size_of::<u64>()
    }

    /// Ripple-carry-adds one packed binary vector into the counter planes.
    fn add_words(&mut self, words: &[u64], kernels: &dyn Kernels) {
        self.carry.copy_from_slice(words);
        let overflow =
            kernels.bundle_add_planes(&mut self.planes, self.words_per_plane, &mut self.carry);
        if overflow {
            self.planes.extend_from_slice(&self.carry);
        }
        self.items += 1;
    }

    /// Carry-adds one packed bit plane at significance `level` (counts get
    /// `2^level` wherever `bits` is set). Used by [`merge`](Self::merge).
    fn add_plane_at_level(&mut self, level: usize, bits: &[u64], kernels: &dyn Kernels) {
        if bits.iter().all(|&word| word == 0) {
            return;
        }
        while self.plane_count() < level {
            self.planes
                .resize(self.planes.len() + self.words_per_plane, 0);
        }
        self.carry.copy_from_slice(bits);
        let start = level * self.words_per_plane;
        let overflow = kernels.bundle_add_planes(
            &mut self.planes[start..],
            self.words_per_plane,
            &mut self.carry,
        );
        if overflow {
            self.planes.extend_from_slice(&self.carry);
        }
    }

    /// Adds a binary hypervector element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn add(&mut self, hv: &BinaryHypervector) -> Result<()> {
        self.add_with(hv, kernels::auto())
    }

    /// [`add`](Self::add) through an explicit [`Kernels`] selection.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn add_with(&mut self, hv: &BinaryHypervector, kernels: &dyn Kernels) -> Result<()> {
        if hv.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: hv.dim(),
            });
        }
        self.add_words(hv.as_words(), kernels);
        Ok(())
    }

    /// Adds one [`crate::HvMatrix`] row element-wise, without materialising
    /// a [`BinaryHypervector`] — the allocation-free bundling step of the
    /// batched clusterer.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn add_row(&mut self, row: HvRow<'_>) -> Result<()> {
        self.add_row_with(row, kernels::auto())
    }

    /// [`add_row`](Self::add_row) through an explicit [`Kernels`] selection
    /// — the K-Means update step threads its backend kernels in here.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn add_row_with(&mut self, row: HvRow<'_>, kernels: &dyn Kernels) -> Result<()> {
        if row.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: row.dim(),
            });
        }
        self.add_words(row.as_words(), kernels);
        Ok(())
    }

    /// Merges another accumulator into this one (plane-wise carry adds, one
    /// per plane of `other`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if other.dim != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
            });
        }
        let kernels = kernels::auto();
        for level in 0..other.plane_count() {
            let start = level * other.words_per_plane;
            let plane = &other.planes[start..start + other.words_per_plane];
            self.add_plane_at_level(level, plane, kernels);
        }
        self.items += other.items;
        Ok(())
    }

    /// Dot product with a binary hypervector (sum of counts at set bits).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn dot(&self, hv: &BinaryHypervector) -> Result<u64> {
        if hv.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: hv.dim(),
            });
        }
        Ok(kernels::auto().plane_dot(&self.planes, self.words_per_plane, hv.as_words()))
    }

    /// Dot product with a matrix row (sum of counts at set bits), without
    /// materialising a [`BinaryHypervector`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn dot_row(&self, row: HvRow<'_>) -> Result<u64> {
        if row.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: row.dim(),
            });
        }
        Ok(kernels::auto().plane_dot(&self.planes, self.words_per_plane, row.as_words()))
    }

    /// Euclidean norm of the integer count vector.
    ///
    /// Computed exactly: `Σ_i counts[i]²` decomposes plane-against-plane as
    /// `Σ_{p,q} 2^{p+q} · popcount(plane_p AND plane_q)`, an exact integer,
    /// so the result is identical whichever kernels computed it.
    pub fn norm(&self) -> f64 {
        self.norm_with(kernels::auto())
    }

    /// [`norm`](Self::norm) through an explicit [`Kernels`] selection.
    pub fn norm_with(&self, kernels: &dyn Kernels) -> f64 {
        // The cross product is symmetric, so only the upper triangle is
        // computed (off-diagonal terms doubled) — P(P+1)/2 kernel passes
        // instead of P². Exact integers throughout, so the value is
        // identical to the full double loop.
        let planes: Vec<&[u64]> = self.planes.chunks_exact(self.words_per_plane).collect();
        let mut total = 0u128;
        for (p, plane_p) in planes.iter().enumerate() {
            for (q, plane_q) in planes.iter().enumerate().skip(p) {
                let term = u128::from(kernels.and_popcount(plane_p, plane_q)) << (p + q);
                total += if q == p { term } else { 2 * term };
            }
        }
        (total as f64).sqrt()
    }

    /// Cosine similarity between this accumulator and a binary hypervector,
    /// as defined in Eq. 7 of the SegHDC paper.
    ///
    /// Zero vectors have zero similarity with everything by convention.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_similarity(&self, hv: &BinaryHypervector) -> Result<f64> {
        Ok(cosine_of(self.dot(hv)?, self.norm(), hv.count_ones()))
    }

    /// Cosine distance (`1 - cosine_similarity`), the clustering metric used
    /// by SegHDC.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_distance(&self, hv: &BinaryHypervector) -> Result<f64> {
        Ok(1.0 - self.cosine_similarity(hv)?)
    }

    /// Cosine similarity against a matrix row.
    ///
    /// The arithmetic mirrors [`cosine_similarity`](Self::cosine_similarity)
    /// operation for operation, so the batched clusterer produces
    /// bit-identical distances to the single-vector path.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_similarity_row(&self, row: HvRow<'_>) -> Result<f64> {
        Ok(cosine_of(self.dot_row(row)?, self.norm(), row.count_ones()))
    }

    /// Cosine distance (`1 - cosine_similarity_row`) against a matrix row.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_distance_row(&self, row: HvRow<'_>) -> Result<f64> {
        Ok(1.0 - self.cosine_similarity_row(row)?)
    }

    /// Snapshots the accumulator into a [`BitSlicedCounts`] for fast
    /// repeated dot products against matrix rows.
    ///
    /// Since the accumulator itself is stored bit-sliced, the snapshot is a
    /// plane copy plus the cached norm; dot products and distances derived
    /// from it are bit-identical to [`cosine_distance`](Self::cosine_distance).
    pub fn to_bit_sliced(&self) -> BitSlicedCounts {
        self.to_bit_sliced_with(kernels::auto())
    }

    /// [`to_bit_sliced`](Self::to_bit_sliced) through an explicit
    /// [`Kernels`] selection (used for the cached norm computation).
    pub fn to_bit_sliced_with(&self, kernels: &dyn Kernels) -> BitSlicedCounts {
        BitSlicedCounts {
            dim: self.dim,
            words_per_plane: self.words_per_plane,
            planes: self.planes.clone(),
            norm: self.norm_with(kernels),
            items: self.items,
        }
    }

    /// Thresholds the accumulator back into a binary hypervector with the
    /// classical HDC majority rule: a bit is one if it was set in more than
    /// half of the accumulated vectors (ties broken towards zero).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if nothing has been accumulated.
    pub fn to_majority(&self) -> Result<BinaryHypervector> {
        if self.items == 0 {
            return Err(HdcError::EmptyInput);
        }
        let threshold = self.items as u64;
        let bits: Vec<bool> = self
            .counts()
            .iter()
            .map(|&c| 2 * u64::from(c) > threshold)
            .collect();
        BinaryHypervector::from_bits(&bits)
    }
}

/// A bit-sliced snapshot of an [`Accumulator`], optimised for computing
/// many dot products against [`HvRow`]s.
///
/// The integer count vector is held as binary *planes*: plane `p` is a
/// packed bit vector whose bit `i` is bit `p` of `counts[i]`. A dot product
/// with a binary row then decomposes as
/// `Σ_p 2^p · popcount(row AND plane_p)` — word-wide operations dispatched
/// through the [`kernels`](crate::kernels) layer instead of a per-set-bit
/// counter walk. With `n` accumulated vectors there are at most
/// `⌈log2(n + 1)⌉` planes.
///
/// The snapshot also caches the Euclidean norm, which the cosine metric
/// needs once per centroid rather than once per pixel. Dot products are
/// exact, so [`cosine_distance_row`](Self::cosine_distance_row) returns
/// bit-identical values to [`Accumulator::cosine_distance`].
#[derive(Debug, Clone)]
pub struct BitSlicedCounts {
    dim: usize,
    words_per_plane: usize,
    /// Plane-major packed bits: `planes[p * words_per_plane + w]`.
    planes: Vec<u64>,
    norm: f64,
    items: usize,
}

impl BitSlicedCounts {
    /// Reassembles a snapshot from its raw parts, the inverse of
    /// [`dim`](Self::dim) / [`plane_words`](Self::plane_words) /
    /// [`norm`](Self::norm) / [`items`](Self::items) — the persistence
    /// constructor: a serialized centroid set round-trips through these
    /// accessors bit-identically (including the cached norm, which is
    /// stored rather than recomputed so cosine distances stay exact).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`, and
    /// [`HdcError::InvalidParameter`] if `planes` is not a whole number of
    /// `dim.div_ceil(64)`-word planes, a tail bit beyond `dim` is set, or
    /// `norm` is not a finite non-negative value.
    pub fn from_parts(dim: usize, planes: Vec<u64>, norm: f64, items: usize) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        let words_per_plane = dim.div_ceil(64);
        if !planes.len().is_multiple_of(words_per_plane) {
            return Err(HdcError::InvalidParameter {
                message: format!(
                    "plane words ({}) are not a multiple of the {words_per_plane}-word plane size",
                    planes.len()
                ),
            });
        }
        let tail_bits = dim % 64;
        if tail_bits != 0 {
            let mask = !0u64 << tail_bits;
            for plane in planes.chunks_exact(words_per_plane) {
                if plane[words_per_plane - 1] & mask != 0 {
                    return Err(HdcError::InvalidParameter {
                        message: format!("plane tail bits beyond dimension {dim} are set"),
                    });
                }
            }
        }
        if !(norm.is_finite() && norm >= 0.0) {
            return Err(HdcError::InvalidParameter {
                message: format!("norm must be finite and non-negative, got {norm}"),
            });
        }
        Ok(Self {
            dim,
            words_per_plane,
            planes,
            norm,
            items,
        })
    }

    /// The hypervector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The raw plane-major packed counter bits
    /// (`planes[p * dim.div_ceil(64) + w]`), for persistence; feed them
    /// back through [`from_parts`](Self::from_parts).
    pub fn plane_words(&self) -> &[u64] {
        &self.planes
    }

    /// Number of binary planes (`⌈log2(max_count + 1)⌉`).
    pub fn plane_count(&self) -> usize {
        self.planes
            .len()
            .checked_div(self.words_per_plane)
            .unwrap_or(0)
    }

    /// Number of vectors that were accumulated when the snapshot was taken.
    pub fn items(&self) -> usize {
        self.items
    }

    /// The cached Euclidean norm of the snapshotted count vector.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Exact dot product with a matrix row (sum of counts at set bits).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn dot_row(&self, row: HvRow<'_>) -> Result<u64> {
        self.dot_row_with(row, kernels::auto())
    }

    /// [`dot_row`](Self::dot_row) through an explicit [`Kernels`]
    /// selection.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn dot_row_with(&self, row: HvRow<'_>, kernels: &dyn Kernels) -> Result<u64> {
        if row.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: row.dim(),
            });
        }
        Ok(kernels.plane_dot(&self.planes, self.words_per_plane, row.as_words()))
    }

    /// Cosine similarity against a matrix row, arithmetically identical to
    /// [`Accumulator::cosine_similarity`] (same dot product, same cached
    /// norm value, same operation order).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_similarity_row(&self, row: HvRow<'_>) -> Result<f64> {
        self.cosine_similarity_row_with(row, kernels::auto())
    }

    /// [`cosine_similarity_row`](Self::cosine_similarity_row) through an
    /// explicit [`Kernels`] selection — the K-Means assignment step threads
    /// its backend kernels in here.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_similarity_row_with(&self, row: HvRow<'_>, kernels: &dyn Kernels) -> Result<f64> {
        Ok(cosine_of(
            self.dot_row_with(row, kernels)?,
            self.norm,
            kernels.popcount(row.as_words()) as usize,
        ))
    }

    /// Cosine distance (`1 - cosine_similarity_row`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_distance_row(&self, row: HvRow<'_>) -> Result<f64> {
        Ok(1.0 - self.cosine_similarity_row(row)?)
    }

    /// [`cosine_distance_row`](Self::cosine_distance_row) through an
    /// explicit [`Kernels`] selection.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_distance_row_with(&self, row: HvRow<'_>, kernels: &dyn Kernels) -> Result<f64> {
        Ok(1.0 - self.cosine_similarity_row_with(row, kernels)?)
    }

    /// Exact dot product between two bit-sliced count vectors:
    /// `Σ_i self.counts[i] · other.counts[i]`, computed plane-against-plane
    /// as `Σ_{p,q} 2^{p+q} · popcount(plane_p AND other_plane_q)`.
    ///
    /// This is the centroid-against-centroid similarity primitive the tiled
    /// segmenter's label stitching runs on: with `P` and `Q` planes the
    /// whole dot product costs `P · Q` word-wide AND+popcount kernel passes
    /// instead of a `dim`-length integer multiply-accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn dot_sliced(&self, other: &BitSlicedCounts) -> Result<u64> {
        self.dot_sliced_with(other, kernels::auto())
    }

    /// [`dot_sliced`](Self::dot_sliced) through an explicit [`Kernels`]
    /// selection.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn dot_sliced_with(&self, other: &BitSlicedCounts, kernels: &dyn Kernels) -> Result<u64> {
        if other.dim != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
            });
        }
        let mut total = 0u64;
        for (p, plane) in self.planes.chunks_exact(self.words_per_plane).enumerate() {
            for (q, other_plane) in other.planes.chunks_exact(other.words_per_plane).enumerate() {
                total += kernels.and_popcount(plane, other_plane) << (p + q);
            }
        }
        Ok(total)
    }

    /// Cosine similarity between two bit-sliced count vectors (exact dot
    /// product over the cached norms; zero vectors have zero similarity
    /// with everything by convention).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_similarity_sliced(&self, other: &BitSlicedCounts) -> Result<f64> {
        self.cosine_similarity_sliced_with(other, kernels::auto())
    }

    /// [`cosine_similarity_sliced`](Self::cosine_similarity_sliced) through
    /// an explicit [`Kernels`] selection — the tiled segmenter's stitching
    /// pass threads its backend kernels in here.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_similarity_sliced_with(
        &self,
        other: &BitSlicedCounts,
        kernels: &dyn Kernels,
    ) -> Result<f64> {
        let dot = self.dot_sliced_with(other, kernels)? as f64;
        if self.norm == 0.0 || other.norm == 0.0 {
            return Ok(0.0);
        }
        Ok(dot / (self.norm * other.norm))
    }
}

/// A group of bit-sliced counters stacked contiguously, ready for the
/// fused multi-centroid kernels.
///
/// Where [`BitSlicedCounts`] snapshots one accumulator, this view stacks the
/// planes of *all* K-Means centroids back-to-back in one buffer (with each
/// centroid's cached norm), which is exactly the layout
/// [`Kernels::plane_dot_multi`] consumes: one pixel row is swept against
/// every centroid's planes while the row words stay loaded. The buffers are
/// reused across [`rebuild`](Self::rebuild) calls, so the per-iteration cost
/// of the K-Means assignment step is plane copies into existing capacity —
/// no allocation, no per-centroid snapshot objects.
///
/// [`cache_ranges`](Self::cache_ranges) splits the members into contiguous
/// runs whose stacked planes fit a byte budget; sweeping a block of rows
/// one run at a time keeps the run's planes hot in cache while partial dot
/// products accumulate (exact integer adds, so the split changes nothing).
///
/// When every member's counts fit 15 bits (and the dimension keeps 32-bit
/// dot accumulators safe), the group additionally caches the counts
/// *expanded* to one `u16` lane per dimension, and
/// [`dot_row_range_with`](Self::dot_row_range_with) offers kernels the
/// [`Kernels::counts_dot_multi`] fast path — all planes consumed in one
/// masked multiply-add sweep, with the row's bit→lane expansion shared
/// across the whole group — before falling back to the bit-sliced sweep.
/// Both paths produce the same exact integers.
#[derive(Debug, Clone, Default)]
pub struct BitSlicedGroup {
    dim: usize,
    words_per_plane: usize,
    /// All members' plane stacks, concatenated member-major (member `k`'s
    /// planes are contiguous, least-significant plane first).
    planes: Vec<u64>,
    /// Planes contributed by each member.
    plane_counts: Vec<usize>,
    /// Prefix sums of `plane_counts` (len `members + 1`), in plane units.
    plane_offsets: Vec<usize>,
    /// Each member's cached Euclidean norm.
    norms: Vec<f64>,
    /// The members' counts expanded to one `u16` lane per dimension
    /// (member-major, `words_per_plane * 64` lanes each, tail lanes zero) —
    /// the layout [`Kernels::counts_dot_multi`] consumes. Empty when the
    /// counts exceed the expanded path's exactness gates (see `rebuild`).
    expanded: Vec<u16>,
    /// Whether `expanded` is populated and the gates held.
    expanded_ok: bool,
}

impl BitSlicedGroup {
    /// Creates an empty group; populate it with [`rebuild`](Self::rebuild).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a group from `members` in one step.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the members' dimensions
    /// differ.
    pub fn from_accumulators(members: &[Accumulator], kernels: &dyn Kernels) -> Result<Self> {
        let mut group = Self::new();
        group.rebuild(members, kernels)?;
        Ok(group)
    }

    /// Re-snapshots the group from `members`, reusing the existing buffers.
    ///
    /// The group takes its dimension from the members (an empty slice
    /// yields an empty group). Norms are recomputed with `kernels` exactly
    /// as [`Accumulator::norm_with`] would.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the members' dimensions
    /// differ from each other.
    pub fn rebuild(&mut self, members: &[Accumulator], kernels: &dyn Kernels) -> Result<()> {
        self.planes.clear();
        self.plane_counts.clear();
        self.plane_offsets.clear();
        self.norms.clear();
        self.expanded.clear();
        self.expanded_ok = false;
        self.plane_offsets.push(0);
        let Some(first) = members.first() else {
            self.dim = 0;
            self.words_per_plane = 0;
            return Ok(());
        };
        self.dim = first.dim;
        self.words_per_plane = first.words_per_plane;
        for member in members {
            if member.dim != self.dim {
                return Err(HdcError::DimensionMismatch {
                    left: self.dim,
                    right: member.dim,
                });
            }
            self.planes.extend_from_slice(&member.planes);
            self.plane_counts.push(member.plane_count());
            self.plane_offsets
                .push(self.plane_offsets.last().unwrap() + member.plane_count());
            self.norms.push(member.norm_with(kernels));
        }
        self.rebuild_expanded(members);
        Ok(())
    }

    /// Largest per-dimension count the expanded-counts fast path accepts:
    /// `counts_dot_multi` implementations treat the `u16` lanes as
    /// non-negative `i16`s in `vpmaddwd`.
    const EXPANDED_MAX_COUNT: u32 = i16::MAX as u32;

    /// Largest lane count (padded dimension) the expanded path accepts,
    /// keeping the worst-case dot `lanes · i16::MAX` within `i32::MAX` so
    /// the kernels' 32-bit accumulators cannot wrap.
    const EXPANDED_MAX_LANES: usize = 65_536;

    /// Mean planes per member below which the expanded path is disabled:
    /// one `u16`-lane sweep costs roughly as much as seven bit-plane
    /// sweeps (a 256-bit vector covers 16 `u16` lanes versus 256 bits), so
    /// shallow counters — small bundles — are faster bit-sliced, while
    /// K-Means centroids bundling thousands of pixels (11+ planes) gain
    /// substantially. A profitability heuristic only: both paths produce
    /// identical integers.
    const EXPANDED_MIN_MEAN_PLANES: usize = 7;

    /// Populates `expanded` with every member's counts as `u16` lanes when
    /// the exactness gates hold (counts at most 15 planes, dimension at
    /// most [`Self::EXPANDED_MAX_LANES`]) and the members are deep enough
    /// for the lane sweep to win; otherwise leaves the fast path disabled
    /// and the bit-sliced sweep serves every dot.
    fn rebuild_expanded(&mut self, members: &[Accumulator]) {
        let lanes = self.words_per_plane * 64;
        let max_planes = 32 - Self::EXPANDED_MAX_COUNT.leading_zeros() as usize;
        if lanes > Self::EXPANDED_MAX_LANES
            || self.plane_counts.iter().any(|&count| count > max_planes)
            || self.plane_counts.iter().sum::<usize>()
                < Self::EXPANDED_MIN_MEAN_PLANES * members.len()
        {
            return;
        }
        self.expanded.resize(members.len() * lanes, 0);
        for (member, source) in members.iter().enumerate() {
            let target = &mut self.expanded[member * lanes..(member + 1) * lanes];
            for (p, plane) in source.planes.chunks_exact(self.words_per_plane).enumerate() {
                let weight = 1u16 << p;
                for (w, &word) in plane.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        target[w * 64 + bits.trailing_zeros() as usize] += weight;
                        bits &= bits - 1;
                    }
                }
            }
        }
        self.expanded_ok = true;
    }

    /// Number of members in the group.
    pub fn len(&self) -> usize {
        self.plane_counts.len()
    }

    /// Whether the group has no members.
    pub fn is_empty(&self) -> bool {
        self.plane_counts.is_empty()
    }

    /// The members' hypervector dimension (0 for an empty group).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Member `member`'s cached Euclidean norm.
    pub fn norm(&self, member: usize) -> f64 {
        self.norms[member]
    }

    /// Planes contributed by each member, in member order.
    pub fn plane_counts(&self) -> &[usize] {
        &self.plane_counts
    }

    /// Splits the members into contiguous ranges whose stacked planes each
    /// occupy at most `budget_bytes` (every range holds at least one member,
    /// so a single oversized member still forms its own range).
    pub fn cache_ranges(&self, budget_bytes: usize) -> Vec<std::ops::Range<usize>> {
        let budget_words = (budget_bytes / std::mem::size_of::<u64>()).max(1);
        let mut ranges = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let mut end = start + 1;
            let mut words = self.plane_counts[start] * self.words_per_plane;
            while end < self.len() {
                let next = self.plane_counts[end] * self.words_per_plane;
                if words + next > budget_words {
                    break;
                }
                words += next;
                end += 1;
            }
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    /// Accumulates (`+=`) into `out[i]` the exact dot product between `row`
    /// and member `members.start + i`, for every member in `members` — via
    /// the expanded-counts [`Kernels::counts_dot_multi`] fast path when the
    /// group cached it and the kernel accepts, otherwise via one fused
    /// bit-sliced [`Kernels::plane_dot_multi`] sweep (identical integers
    /// either way).
    ///
    /// Lengths are the caller's contract (`out.len() == members.len()`,
    /// `row` of the group's dimension), matching the kernel layer's
    /// debug-assert policy — the clustering loop validates dimensions once
    /// per call, not once per pixel.
    pub fn dot_row_range_with(
        &self,
        members: std::ops::Range<usize>,
        row: HvRow<'_>,
        out: &mut [u64],
        kernels: &dyn Kernels,
    ) {
        debug_assert!(members.end <= self.len());
        debug_assert_eq!(out.len(), members.len());
        debug_assert_eq!(row.dim(), self.dim);
        if self.expanded_ok {
            let lanes = self.words_per_plane * 64;
            let counts = &self.expanded[members.start * lanes..members.end * lanes];
            if kernels.counts_dot_multi(counts, row.as_words(), out) {
                return;
            }
        }
        let words = &self.planes[self.plane_offsets[members.start] * self.words_per_plane
            ..self.plane_offsets[members.end] * self.words_per_plane];
        kernels.plane_dot_multi(
            words,
            self.words_per_plane,
            &self.plane_counts[members.clone()],
            row.as_words(),
            out,
        );
    }

    /// Cosine distance of member `member` given its exact dot product with
    /// a row of `ones` set bits — arithmetically identical to
    /// [`BitSlicedCounts::cosine_distance_row_with`] (same `cosine_of`
    /// funnel, same cached-norm value).
    pub fn cosine_distance_of(&self, member: usize, dot: u64, ones: usize) -> f64 {
        1.0 - cosine_of(dot, self.norms[member], ones)
    }

    /// [`cosine_distance_of`](Self::cosine_distance_of) with the row's
    /// Euclidean norm (`sqrt(ones)`) precomputed — the assignment loop
    /// takes one square root per pixel instead of one per pixel×member,
    /// with bit-identical results (same `cosine_of` funnel).
    pub fn cosine_distance_with_row_norm(&self, member: usize, dot: u64, row_norm: f64) -> f64 {
        1.0 - cosine_of_prenorm(dot, self.norms[member], row_norm)
    }
}

/// The single definition of Eq. 7's cosine similarity between an integer
/// bundle (given as exact `dot` and Euclidean norm) and a binary vector
/// with `ones` set bits. Every cosine entry point — `Accumulator` against
/// vectors or rows, and `BitSlicedCounts` against rows — funnels through
/// here, which is what makes their results bit-identical by construction.
/// Zero vectors have zero similarity with everything by convention.
fn cosine_of(dot: u64, bundle_norm: f64, ones: usize) -> f64 {
    cosine_of_prenorm(dot, bundle_norm, (ones as f64).sqrt())
}

/// [`cosine_of`] with the binary vector's Euclidean norm (`sqrt(ones)`)
/// already computed. `sqrt` on the same operand is IEEE-deterministic, so
/// hoisting it out of a per-centroid loop (one root per pixel instead of
/// one per pixel×centroid) leaves every similarity bit-identical.
fn cosine_of_prenorm(dot: u64, bundle_norm: f64, row_norm: f64) -> f64 {
    if bundle_norm == 0.0 || row_norm == 0.0 {
        return 0.0;
    }
    dot as f64 / (bundle_norm * row_norm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdcRng;

    #[test]
    fn zero_dim_rejected() {
        assert_eq!(Accumulator::zeros(0).unwrap_err(), HdcError::ZeroDimension);
    }

    #[test]
    fn add_counts_set_bits() {
        let hv = BinaryHypervector::from_bits(&[true, false, true, true]).unwrap();
        let mut acc = Accumulator::zeros(4).unwrap();
        acc.add(&hv).unwrap();
        acc.add(&hv).unwrap();
        assert_eq!(acc.counts(), [2, 0, 2, 2]);
        assert_eq!(acc.items(), 2);
        // Count 2 needs exactly two planes (binary 10).
        assert_eq!(acc.plane_count(), 2);
    }

    #[test]
    fn counts_match_a_naive_per_index_walk() {
        let mut rng = HdcRng::seed_from(99);
        for dim in [70usize, 256, 1000] {
            let members: Vec<BinaryHypervector> = (0..11)
                .map(|_| BinaryHypervector::random(dim, &mut rng))
                .collect();
            let mut acc = Accumulator::zeros(dim).unwrap();
            for m in &members {
                acc.add(m).unwrap();
            }
            let counts = acc.counts();
            for (i, &count) in counts.iter().enumerate() {
                let naive = members.iter().filter(|m| m.bit(i).unwrap()).count() as u32;
                assert_eq!(count, naive, "dim {dim}, index {i}");
            }
            // Canonical planes: exactly enough for the largest count.
            let max_count = counts.iter().copied().max().unwrap();
            assert_eq!(acc.plane_count(), (32 - max_count.leading_zeros()) as usize);
        }
    }

    #[test]
    fn dimension_mismatch_detected() {
        let hv = BinaryHypervector::zeros(8).unwrap();
        let mut acc = Accumulator::zeros(4).unwrap();
        assert!(acc.add(&hv).is_err());
        assert!(acc.dot(&hv).is_err());
        assert!(acc.cosine_similarity(&hv).is_err());
        let other = Accumulator::zeros(8).unwrap();
        assert!(acc.merge(&other).is_err());
    }

    #[test]
    fn cosine_similarity_matches_manual_computation() {
        let hv = BinaryHypervector::from_bits(&[true, true, false, false]).unwrap();
        let mut acc = Accumulator::zeros(4).unwrap();
        acc.add(&BinaryHypervector::from_bits(&[true, false, true, false]).unwrap())
            .unwrap();
        acc.add(&BinaryHypervector::from_bits(&[true, true, false, false]).unwrap())
            .unwrap();
        // counts = [2, 1, 1, 0]; dot with hv = 2 + 1 = 3
        // |acc| = sqrt(4+1+1) = sqrt(6); |hv| = sqrt(2)
        let expected = 3.0 / (6.0f64.sqrt() * 2.0f64.sqrt());
        let got = acc.cosine_similarity(&hv).unwrap();
        assert!((got - expected).abs() < 1e-12);
        assert!((acc.cosine_distance(&hv).unwrap() - (1.0 - expected)).abs() < 1e-12);
    }

    #[test]
    fn scaling_invariance_of_cosine() {
        // Adding the same member set twice must not change the cosine
        // similarity — the property the paper uses to justify skipping
        // centroid normalisation.
        let mut rng = HdcRng::seed_from(3);
        let members: Vec<BinaryHypervector> = (0..5)
            .map(|_| BinaryHypervector::random(1024, &mut rng))
            .collect();
        let probe = BinaryHypervector::random(1024, &mut rng);
        let mut once = Accumulator::zeros(1024).unwrap();
        let mut twice = Accumulator::zeros(1024).unwrap();
        for m in &members {
            once.add(m).unwrap();
            twice.add(m).unwrap();
            twice.add(m).unwrap();
        }
        let s1 = once.cosine_similarity(&probe).unwrap();
        let s2 = twice.cosine_similarity(&probe).unwrap();
        assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential_adds() {
        let mut rng = HdcRng::seed_from(4);
        let hvs: Vec<BinaryHypervector> = (0..6)
            .map(|_| BinaryHypervector::random(256, &mut rng))
            .collect();
        let mut all = Accumulator::zeros(256).unwrap();
        for hv in &hvs {
            all.add(hv).unwrap();
        }
        let mut left = Accumulator::zeros(256).unwrap();
        let mut right = Accumulator::zeros(256).unwrap();
        for hv in &hvs[..3] {
            left.add(hv).unwrap();
        }
        for hv in &hvs[3..] {
            right.add(hv).unwrap();
        }
        left.merge(&right).unwrap();
        assert_eq!(left, all);
        assert_eq!(left.counts(), all.counts());
    }

    #[test]
    fn merge_into_an_empty_accumulator_copies_the_counts() {
        let mut rng = HdcRng::seed_from(44);
        let mut source = Accumulator::zeros(300).unwrap();
        for _ in 0..9 {
            source
                .add(&BinaryHypervector::random(300, &mut rng))
                .unwrap();
        }
        let mut target = Accumulator::zeros(300).unwrap();
        target.merge(&source).unwrap();
        assert_eq!(target, source);
        // And merging an empty accumulator changes nothing.
        let before = target.clone();
        target.merge(&Accumulator::zeros(300).unwrap()).unwrap();
        assert_eq!(target.counts(), before.counts());
    }

    #[test]
    fn majority_of_identical_vectors_is_that_vector() {
        let mut rng = HdcRng::seed_from(5);
        let hv = BinaryHypervector::random(300, &mut rng);
        let mut acc = Accumulator::zeros(300).unwrap();
        for _ in 0..3 {
            acc.add(&hv).unwrap();
        }
        assert_eq!(acc.to_majority().unwrap(), hv);
    }

    #[test]
    fn majority_of_empty_accumulator_errors() {
        let acc = Accumulator::zeros(16).unwrap();
        assert_eq!(acc.to_majority().unwrap_err(), HdcError::EmptyInput);
    }

    #[test]
    fn clear_resets_state() {
        let hv = BinaryHypervector::ones(32).unwrap();
        let mut acc = Accumulator::from_binary(&hv);
        assert_eq!(acc.items(), 1);
        acc.clear();
        assert_eq!(acc.items(), 0);
        assert_eq!(acc.plane_count(), 0);
        assert!(acc.counts().iter().all(|&c| c == 0));
        assert_eq!(acc, Accumulator::zeros(32).unwrap());
    }

    #[test]
    fn row_operations_match_vector_operations() {
        let mut rng = HdcRng::seed_from(6);
        let members: Vec<BinaryHypervector> = (0..4)
            .map(|_| BinaryHypervector::random(500, &mut rng))
            .collect();
        let probe = BinaryHypervector::random(500, &mut rng);
        let matrix = crate::HvMatrix::from_vectors(&members).unwrap();
        let probe_matrix = crate::HvMatrix::from_vectors(std::slice::from_ref(&probe)).unwrap();

        let mut by_vector = Accumulator::zeros(500).unwrap();
        let mut by_row = Accumulator::zeros(500).unwrap();
        for (i, m) in members.iter().enumerate() {
            by_vector.add(m).unwrap();
            by_row.add_row(matrix.row(i)).unwrap();
        }
        assert_eq!(by_vector, by_row);
        assert_eq!(
            by_vector.dot(&probe).unwrap(),
            by_row.dot_row(probe_matrix.row(0)).unwrap()
        );
        // Bit-identical floats, not approximate equality: the batched
        // clusterer depends on it.
        assert_eq!(
            by_vector.cosine_similarity(&probe).unwrap().to_bits(),
            by_row
                .cosine_similarity_row(probe_matrix.row(0))
                .unwrap()
                .to_bits()
        );
        assert_eq!(
            by_vector.cosine_distance(&probe).unwrap().to_bits(),
            by_row
                .cosine_distance_row(probe_matrix.row(0))
                .unwrap()
                .to_bits()
        );
    }

    #[test]
    fn scalar_and_auto_kernels_accumulate_identically() {
        let mut rng = HdcRng::seed_from(31);
        for dim in [70usize, 1000] {
            let members: Vec<BinaryHypervector> = (0..13)
                .map(|_| BinaryHypervector::random(dim, &mut rng))
                .collect();
            let matrix = crate::HvMatrix::from_vectors(&members).unwrap();
            let mut by_scalar = Accumulator::zeros(dim).unwrap();
            let mut by_auto = Accumulator::zeros(dim).unwrap();
            for i in 0..members.len() {
                by_scalar
                    .add_row_with(matrix.row(i), kernels::scalar())
                    .unwrap();
                by_auto
                    .add_row_with(matrix.row(i), kernels::auto())
                    .unwrap();
            }
            assert_eq!(by_scalar, by_auto);
            assert_eq!(
                by_scalar.norm_with(kernels::scalar()).to_bits(),
                by_auto.norm_with(kernels::auto()).to_bits()
            );
            let probe = matrix.row(0);
            assert_eq!(
                by_scalar
                    .to_bit_sliced_with(kernels::scalar())
                    .cosine_distance_row_with(probe, kernels::scalar())
                    .unwrap()
                    .to_bits(),
                by_auto
                    .to_bit_sliced_with(kernels::auto())
                    .cosine_distance_row_with(probe, kernels::auto())
                    .unwrap()
                    .to_bits()
            );
        }
    }

    #[test]
    fn bit_sliced_dot_and_cosine_match_the_accumulator_exactly() {
        let mut rng = HdcRng::seed_from(13);
        for dim in [70usize, 256, 1000] {
            let members: Vec<BinaryHypervector> = (0..9)
                .map(|_| BinaryHypervector::random(dim, &mut rng))
                .collect();
            let mut acc = Accumulator::zeros(dim).unwrap();
            for m in &members {
                acc.add(m).unwrap();
            }
            let sliced = acc.to_bit_sliced();
            assert_eq!(sliced.dim(), dim);
            assert_eq!(sliced.items(), 9);
            assert_eq!(sliced.norm().to_bits(), acc.norm().to_bits());
            // Exactly enough planes for the largest count present.
            let max_count = acc.counts().iter().copied().max().unwrap();
            assert_eq!(
                sliced.plane_count(),
                (32 - max_count.leading_zeros()) as usize
            );
            assert!(sliced.plane_count() <= 4); // counts are in 0..=9

            let probes = crate::HvMatrix::from_vectors(&members).unwrap();
            for (i, member) in members.iter().enumerate() {
                let row = probes.row(i);
                assert_eq!(sliced.dot_row(row).unwrap(), acc.dot(member).unwrap());
                assert_eq!(
                    sliced.cosine_distance_row(row).unwrap().to_bits(),
                    acc.cosine_distance(member).unwrap().to_bits(),
                    "dim {dim}, member {i}"
                );
            }
        }
    }

    #[test]
    fn bit_sliced_empty_accumulator_has_no_planes_and_zero_similarity() {
        let acc = Accumulator::zeros(64).unwrap();
        let sliced = acc.to_bit_sliced();
        assert_eq!(sliced.plane_count(), 0);
        let probe = crate::HvMatrix::from_vectors(&[BinaryHypervector::ones(64).unwrap()]).unwrap();
        assert_eq!(sliced.dot_row(probe.row(0)).unwrap(), 0);
        assert_eq!(sliced.cosine_similarity_row(probe.row(0)).unwrap(), 0.0);
        let wrong = crate::HvMatrix::zeros(1, 128).unwrap();
        assert!(sliced.dot_row(wrong.row(0)).is_err());
    }

    #[test]
    fn sliced_dot_matches_the_scalar_count_product() {
        let mut rng = HdcRng::seed_from(21);
        for dim in [70usize, 256, 1000] {
            let mut a = Accumulator::zeros(dim).unwrap();
            let mut b = Accumulator::zeros(dim).unwrap();
            for _ in 0..7 {
                a.add(&BinaryHypervector::random(dim, &mut rng)).unwrap();
            }
            for _ in 0..12 {
                b.add(&BinaryHypervector::random(dim, &mut rng)).unwrap();
            }
            let b_counts = b.counts();
            let expected: u64 = a
                .counts()
                .iter()
                .zip(&b_counts)
                .map(|(&x, &y)| u64::from(x) * u64::from(y))
                .sum();
            let sa = a.to_bit_sliced();
            let sb = b.to_bit_sliced();
            assert_eq!(sa.dot_sliced(&sb).unwrap(), expected, "dim {dim}");
            assert_eq!(sb.dot_sliced(&sa).unwrap(), expected, "dim {dim}");
            let cos = sa.cosine_similarity_sliced(&sb).unwrap();
            let manual = expected as f64 / (a.norm() * b.norm());
            assert!((cos - manual).abs() < 1e-12);
            // Self-similarity of a non-zero bundle is exactly 1.
            assert!((sa.cosine_similarity_sliced(&sa).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sliced_dot_with_empty_or_mismatched_operands() {
        let empty = Accumulator::zeros(64).unwrap().to_bit_sliced();
        let full = Accumulator::from_binary(&BinaryHypervector::ones(64).unwrap()).to_bit_sliced();
        assert_eq!(empty.dot_sliced(&full).unwrap(), 0);
        assert_eq!(empty.cosine_similarity_sliced(&full).unwrap(), 0.0);
        let wrong = Accumulator::zeros(128).unwrap().to_bit_sliced();
        assert!(full.dot_sliced(&wrong).is_err());
        assert!(full.cosine_similarity_sliced(&wrong).is_err());
    }

    #[test]
    fn row_dimension_mismatch_detected() {
        let mut acc = Accumulator::zeros(4).unwrap();
        let matrix = crate::HvMatrix::zeros(1, 8).unwrap();
        assert!(acc.add_row(matrix.row(0)).is_err());
        assert!(acc.dot_row(matrix.row(0)).is_err());
        assert!(acc.cosine_similarity_row(matrix.row(0)).is_err());
    }

    #[test]
    fn cosine_with_zero_operands_is_zero() {
        let acc = Accumulator::zeros(16).unwrap();
        let hv = BinaryHypervector::ones(16).unwrap();
        assert_eq!(acc.cosine_similarity(&hv).unwrap(), 0.0);
        let zero_hv = BinaryHypervector::zeros(16).unwrap();
        let nonzero = Accumulator::from_binary(&hv);
        assert_eq!(nonzero.cosine_similarity(&zero_hv).unwrap(), 0.0);
    }

    #[test]
    fn adding_a_zero_vector_only_bumps_items() {
        let mut acc = Accumulator::zeros(64).unwrap();
        acc.add(&BinaryHypervector::zeros(64).unwrap()).unwrap();
        assert_eq!(acc.items(), 1);
        assert_eq!(acc.plane_count(), 0);
        assert!(acc.counts().iter().all(|&c| c == 0));
    }

    #[test]
    fn group_dots_and_distances_match_per_member_snapshots() {
        let mut rng = HdcRng::seed_from(71);
        for dim in [70usize, 256, 1000] {
            let members: Vec<Accumulator> = (0..5)
                .map(|k| {
                    let mut acc = Accumulator::zeros(dim).unwrap();
                    // Different member sizes -> different plane counts,
                    // including an empty member (zero planes).
                    for _ in 0..(k * 3) {
                        acc.add(&BinaryHypervector::random(dim, &mut rng)).unwrap();
                    }
                    acc
                })
                .collect();
            let kernels = kernels::auto();
            let group = BitSlicedGroup::from_accumulators(&members, kernels).unwrap();
            assert_eq!(group.len(), 5);
            assert_eq!(group.dim(), dim);

            let probe_hv = BinaryHypervector::random(dim, &mut rng);
            let probes = crate::HvMatrix::from_vectors(std::slice::from_ref(&probe_hv)).unwrap();
            let row = probes.row(0);
            let ones = probe_hv.count_ones();

            let mut dots = vec![0u64; group.len()];
            group.dot_row_range_with(0..group.len(), row, &mut dots, kernels);
            for (k, member) in members.iter().enumerate() {
                let sliced = member.to_bit_sliced_with(kernels);
                assert_eq!(dots[k], sliced.dot_row_with(row, kernels).unwrap());
                assert_eq!(group.norm(k).to_bits(), sliced.norm().to_bits());
                assert_eq!(
                    group.cosine_distance_of(k, dots[k], ones).to_bits(),
                    sliced
                        .cosine_distance_row_with(row, kernels)
                        .unwrap()
                        .to_bits(),
                    "dim {dim}, member {k}"
                );
            }

            // Split ranges accumulate to the same dots as the full sweep.
            let mut split_dots = vec![0u64; group.len()];
            for range in group.cache_ranges(2 * 8 * dim.div_ceil(64)) {
                let (start, len) = (range.start, range.len());
                group.dot_row_range_with(range, row, &mut split_dots[start..start + len], kernels);
            }
            assert_eq!(split_dots, dots);
        }
    }

    #[test]
    fn group_dots_fall_back_when_counts_exceed_the_expanded_gate() {
        // One member's counts need 16 planes (> the 15-bit `i16::MAX` gate
        // of the expanded-counts fast path), so the whole group must stay
        // on the bit-sliced sweep — with identical dots.
        let dim = 70usize; // ragged tail word as well
        let mut rng = HdcRng::seed_from(74);
        let repeated = BinaryHypervector::random(dim, &mut rng);
        let mut big = Accumulator::zeros(dim).unwrap();
        for _ in 0..40_000 {
            big.add(&repeated).unwrap();
        }
        assert!(big.plane_count() > 15);
        let mut small = Accumulator::zeros(dim).unwrap();
        for _ in 0..3 {
            small
                .add(&BinaryHypervector::random(dim, &mut rng))
                .unwrap();
        }
        let kernels = kernels::auto();
        let members = vec![big, small];
        let group = BitSlicedGroup::from_accumulators(&members, kernels).unwrap();
        let probe = BinaryHypervector::random(dim, &mut rng);
        let probes = crate::HvMatrix::from_vectors(std::slice::from_ref(&probe)).unwrap();
        let mut dots = vec![0u64; members.len()];
        group.dot_row_range_with(0..members.len(), probes.row(0), &mut dots, kernels);
        for (k, member) in members.iter().enumerate() {
            let sliced = member.to_bit_sliced_with(kernels);
            assert_eq!(
                dots[k],
                sliced.dot_row_with(probes.row(0), kernels).unwrap(),
                "member {k}"
            );
        }
    }

    #[test]
    fn group_rebuild_reuses_buffers_and_validates_dims() {
        let mut rng = HdcRng::seed_from(72);
        let members: Vec<Accumulator> = (0..3)
            .map(|_| Accumulator::from_binary(&BinaryHypervector::random(128, &mut rng)))
            .collect();
        let kernels = kernels::auto();
        let mut group = BitSlicedGroup::new();
        assert!(group.is_empty());
        group.rebuild(&members, kernels).unwrap();
        assert_eq!(group.len(), 3);
        group.rebuild(&members, kernels).unwrap();
        assert_eq!(group.len(), 3);
        assert_eq!(group.plane_counts(), &[1, 1, 1]);

        let mismatched = vec![
            Accumulator::zeros(128).unwrap(),
            Accumulator::zeros(64).unwrap(),
        ];
        assert!(group.rebuild(&mismatched, kernels).is_err());

        group.rebuild(&[], kernels).unwrap();
        assert!(group.is_empty());
        assert_eq!(group.dim(), 0);
        assert!(group.cache_ranges(1024).is_empty());
    }

    #[test]
    fn group_cache_ranges_respect_the_budget_and_cover_all_members() {
        let mut rng = HdcRng::seed_from(73);
        let members: Vec<Accumulator> = (0..7)
            .map(|k| {
                let mut acc = Accumulator::zeros(640).unwrap();
                for _ in 0..(1 << k) {
                    acc.add(&BinaryHypervector::random(640, &mut rng)).unwrap();
                }
                acc
            })
            .collect();
        let group = BitSlicedGroup::from_accumulators(&members, kernels::auto()).unwrap();
        let words_per_plane = 640usize.div_ceil(64);
        for budget in [1usize, 256, 1024, 4096, usize::MAX / 2] {
            let ranges = group.cache_ranges(budget);
            // Ranges tile 0..len contiguously.
            let mut expected_start = 0;
            for range in &ranges {
                assert_eq!(range.start, expected_start);
                assert!(!range.is_empty());
                expected_start = range.end;
                let words: usize = range
                    .clone()
                    .map(|k| group.plane_counts()[k] * words_per_plane)
                    .sum();
                // Within budget unless the range is a single oversized
                // member.
                assert!(words * 8 <= budget || range.len() == 1);
            }
            assert_eq!(expected_start, group.len());
        }
    }

    #[test]
    fn reset_reshapes_and_reuses_the_allocation() {
        let hv = BinaryHypervector::ones(1024).unwrap();
        let mut acc = Accumulator::from_binary(&hv);
        let bytes_before = acc.heap_bytes();
        // One plane plus the carry scratch: two 16-word buffers.
        assert!(bytes_before >= 2 * 16 * 8);
        acc.reset(512).unwrap();
        assert_eq!(acc.dim(), 512);
        assert_eq!(acc.items(), 0);
        assert_eq!(acc.plane_count(), 0);
        assert!(acc.counts().iter().all(|&c| c == 0));
        // Shrinking reuses the buffers; the capacity (and thus heap_bytes)
        // never shrinks.
        assert_eq!(acc.heap_bytes(), bytes_before);
        assert!(acc.reset(0).is_err());
        // The reshaped accumulator still adds correctly.
        let small = BinaryHypervector::ones(512).unwrap();
        acc.add(&small).unwrap();
        assert_eq!(acc.counts(), vec![1u32; 512]);
    }
}
