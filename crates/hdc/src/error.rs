use std::error::Error;
use std::fmt;

/// Errors produced by hypervector operations.
///
/// All fallible operations in this crate return [`HdcError`]; the most common
/// cause is combining hypervectors of different dimensionality.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdcError {
    /// Two hypervectors with different dimensions were combined.
    DimensionMismatch {
        /// Dimension of the left-hand operand.
        left: usize,
        /// Dimension of the right-hand operand.
        right: usize,
    },
    /// A dimension of zero was requested.
    ZeroDimension,
    /// A bit index or bit range fell outside of the hypervector.
    IndexOutOfBounds {
        /// The offending index (or end of range).
        index: usize,
        /// The hypervector dimension.
        dim: usize,
    },
    /// An empty collection was supplied where at least one element is required.
    EmptyInput,
    /// A parameter value is outside of its valid domain.
    InvalidParameter {
        /// Human readable description of the parameter and constraint.
        message: String,
    },
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::DimensionMismatch { left, right } => {
                write!(f, "hypervector dimension mismatch: {left} vs {right}")
            }
            HdcError::ZeroDimension => write!(f, "hypervector dimension must be non-zero"),
            HdcError::IndexOutOfBounds { index, dim } => {
                write!(f, "bit index {index} out of bounds for dimension {dim}")
            }
            HdcError::EmptyInput => write!(f, "expected at least one hypervector"),
            HdcError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl Error for HdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = HdcError::DimensionMismatch { left: 8, right: 16 };
        assert_eq!(err.to_string(), "hypervector dimension mismatch: 8 vs 16");
        let err = HdcError::IndexOutOfBounds { index: 99, dim: 64 };
        assert!(err.to_string().contains("99"));
        assert!(err.to_string().contains("64"));
        let err = HdcError::ZeroDimension;
        assert!(err.to_string().contains("non-zero"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<HdcError>();
    }
}
