use crate::kernels::{self, Kernels};
use crate::{BinaryHypervector, HdcError, Result};
use rayon::prelude::*;

/// A batch of packed binary hypervectors in one contiguous buffer.
///
/// `HvMatrix` is the structure-of-arrays companion to
/// [`BinaryHypervector`]: `rows` hypervectors of dimension `dim` stored
/// row-major in a single `Vec<u64>`, with a fixed row stride of
/// `dim.div_ceil(64)` words. This is the storage the SegHDC hot path runs
/// on — one matrix holds every pixel hypervector of an image, so encoding
/// and clustering touch a single allocation instead of one `Vec<u64>` per
/// pixel.
///
/// Rows are accessed through lightweight views: [`HvRow`] (shared) and
/// [`HvRowMut`] (exclusive). Both operate at word level (XOR, popcount,
/// Hamming) and never allocate. A row round-trips with the single-vector
/// API bit-for-bit: [`HvRow::to_hypervector`] and
/// [`HvMatrix::set_row`] are exact inverses.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), hdc::HdcError> {
/// use hdc::{BinaryHypervector, HdcRng, HvMatrix};
///
/// let mut rng = HdcRng::seed_from(11);
/// let a = BinaryHypervector::random(300, &mut rng);
/// let b = BinaryHypervector::random(300, &mut rng);
///
/// let mut matrix = HvMatrix::zeros(2, 300)?;
/// matrix.set_row(0, &a)?;
/// matrix.row_mut(1).copy_from(&b)?;
/// matrix.row_mut(1).xor_assign(&a)?; // bind in place, no allocation
///
/// assert_eq!(matrix.row(0).to_hypervector(), a);
/// assert_eq!(matrix.row(1).to_hypervector(), a.xor(&b)?);
/// assert_eq!(matrix.row(0).hamming(matrix.row(1))?, a.hamming(&a.xor(&b)?)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HvMatrix {
    rows: usize,
    dim: usize,
    stride: usize,
    words: Vec<u64>,
}

impl HvMatrix {
    /// Creates an all-zero matrix of `rows` hypervectors of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`.
    pub fn zeros(rows: usize, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        let stride = dim.div_ceil(64);
        Ok(Self {
            rows,
            dim,
            stride,
            words: vec![0; rows.saturating_mul(stride)],
        })
    }

    /// Reshapes the matrix in place to `rows` hypervectors of dimension
    /// `dim`, zeroing every bit.
    ///
    /// The backing allocation is **reused** whenever its capacity suffices,
    /// which makes a single `HvMatrix` usable as a bounded arena across a
    /// sequence of differently-sized batches (the streaming tiled segmenter
    /// resets one matrix per tile instead of allocating per tile). Use
    /// [`capacity_bytes`](Self::capacity_bytes) to observe the high-water
    /// mark of the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`.
    pub fn reset(&mut self, rows: usize, dim: usize) -> Result<()> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        let stride = dim.div_ceil(64);
        let words = rows.saturating_mul(stride);
        self.words.clear();
        self.words.resize(words, 0);
        self.rows = rows;
        self.dim = dim;
        self.stride = stride;
        Ok(())
    }

    /// Bytes currently reserved by the backing buffer (its capacity, not
    /// its length) — the number that matters for peak-memory accounting of
    /// arenas built on [`reset`](Self::reset).
    pub fn capacity_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Packs a slice of hypervectors into a matrix (row `i` = `vectors[i]`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if `vectors` is empty and
    /// [`HdcError::DimensionMismatch`] if the vectors disagree in dimension.
    pub fn from_vectors(vectors: &[BinaryHypervector]) -> Result<Self> {
        let first = vectors.first().ok_or(HdcError::EmptyInput)?;
        let mut matrix = Self::zeros(vectors.len(), first.dim())?;
        for (i, hv) in vectors.iter().enumerate() {
            matrix.set_row(i, hv)?;
        }
        Ok(matrix)
    }

    /// Unpacks every row into an owned [`BinaryHypervector`].
    pub fn to_vectors(&self) -> Vec<BinaryHypervector> {
        (0..self.rows)
            .map(|i| self.row(i).to_hypervector())
            .collect()
    }

    /// Number of hypervectors (rows) in the matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Hypervector dimension (bits per row).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per row (`dim.div_ceil(64)`).
    pub fn stride_words(&self) -> usize {
        self.stride
    }

    /// The packed backing buffer (rows concatenated, `stride_words` words
    /// per row).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// A shared view of row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= rows()` (row access is the innermost hot-path
    /// operation, so it uses slice-style indexing rather than `Result`).
    pub fn row(&self, index: usize) -> HvRow<'_> {
        let start = index * self.stride;
        HvRow {
            words: &self.words[start..start + self.stride],
            dim: self.dim,
        }
    }

    /// An exclusive view of row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= rows()`.
    pub fn row_mut(&mut self, index: usize) -> HvRowMut<'_> {
        let start = index * self.stride;
        HvRowMut {
            words: &mut self.words[start..start + self.stride],
            dim: self.dim,
        }
    }

    /// Copies `hv` into row `index`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `hv.dim() != dim()` and
    /// [`HdcError::IndexOutOfBounds`] if the row does not exist.
    pub fn set_row(&mut self, index: usize, hv: &BinaryHypervector) -> Result<()> {
        if index >= self.rows {
            return Err(HdcError::IndexOutOfBounds {
                index,
                dim: self.rows,
            });
        }
        self.row_mut(index).copy_from(hv)
    }

    /// Fills every row in parallel: `fill` is called once per row, across
    /// worker threads, with an exclusive view of that row (initially
    /// whatever the row currently holds).
    ///
    /// This is the batch-encoding primitive: the SegHDC pixel encoder uses
    /// it to XOR-bind codebook entries directly into the matrix with zero
    /// per-row allocation.
    pub fn fill_rows<F>(&mut self, fill: F)
    where
        F: Fn(usize, &mut HvRowMut<'_>) + Sync,
    {
        let dim = self.dim;
        self.words
            .as_mut_slice()
            .par_chunks_mut(self.stride)
            .enumerate()
            .for_each(|(index, words)| {
                let mut row = HvRowMut { words, dim };
                fill(index, &mut row);
            });
    }
}

/// A shared, never-allocating view of one [`HvMatrix`] row.
#[derive(Debug, Clone, Copy)]
pub struct HvRow<'a> {
    words: &'a [u64],
    dim: usize,
}

impl<'a> HvRow<'a> {
    /// The hypervector dimension of this row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed words backing this row.
    pub fn as_words(&self) -> &'a [u64] {
        self.words
    }

    /// Number of bits set to one.
    pub fn count_ones(&self) -> usize {
        kernels::auto().popcount(self.words) as usize
    }

    /// Iterates over the indices of the set bits, in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + 'a {
        kernels::iter_set_bits(self.words)
    }

    /// Hamming distance to another row.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn hamming(&self, other: HvRow<'_>) -> Result<usize> {
        if self.dim != other.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
            });
        }
        Ok(kernels::auto().hamming(self.words, other.words) as usize)
    }

    /// Hamming distance to a single hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn hamming_hv(&self, hv: &BinaryHypervector) -> Result<usize> {
        self.hamming_hv_with(hv, kernels::auto())
    }

    /// [`hamming_hv`](Self::hamming_hv) through an explicit [`Kernels`]
    /// selection — the hot-path variant an execution backend threads its
    /// kernels into.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn hamming_hv_with(&self, hv: &BinaryHypervector, kernels: &dyn Kernels) -> Result<usize> {
        if self.dim != hv.dim() {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: hv.dim(),
            });
        }
        Ok(kernels.hamming(self.words, hv.as_words()) as usize)
    }

    /// Normalized Hamming distance (`hamming / dim`) to a hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn normalized_hamming_hv(&self, hv: &BinaryHypervector) -> Result<f64> {
        Ok(self.hamming_hv(hv)? as f64 / self.dim as f64)
    }

    /// [`normalized_hamming_hv`](Self::normalized_hamming_hv) through an
    /// explicit [`Kernels`] selection.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn normalized_hamming_hv_with(
        &self,
        hv: &BinaryHypervector,
        kernels: &dyn Kernels,
    ) -> Result<f64> {
        Ok(self.hamming_hv_with(hv, kernels)? as f64 / self.dim as f64)
    }

    /// Copies this row into an owned [`BinaryHypervector`] (allocates).
    pub fn to_hypervector(&self) -> BinaryHypervector {
        BinaryHypervector::from_words(self.dim, self.words.to_vec())
            .expect("row views hold exactly dim.div_ceil(64) words")
    }
}

/// An exclusive, never-allocating view of one [`HvMatrix`] row.
#[derive(Debug)]
pub struct HvRowMut<'a> {
    words: &'a mut [u64],
    dim: usize,
}

impl HvRowMut<'_> {
    /// The hypervector dimension of this row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Reborrows as a shared row view.
    pub fn as_row(&self) -> HvRow<'_> {
        HvRow {
            words: self.words,
            dim: self.dim,
        }
    }

    /// Sets every bit of the row to zero.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites the row with `hv`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn copy_from(&mut self, hv: &BinaryHypervector) -> Result<()> {
        self.check_dim(hv.dim())?;
        self.words.copy_from_slice(hv.as_words());
        Ok(())
    }

    /// Overwrites the row with another row.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn copy_from_row(&mut self, row: HvRow<'_>) -> Result<()> {
        self.check_dim(row.dim())?;
        self.words.copy_from_slice(row.as_words());
        Ok(())
    }

    /// XORs `hv` into the row in place (the HDC binding operation).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn xor_assign(&mut self, hv: &BinaryHypervector) -> Result<()> {
        self.xor_assign_with(hv, kernels::auto())
    }

    /// [`xor_assign`](Self::xor_assign) through an explicit [`Kernels`]
    /// selection — the hot-path variant the batch pixel encoder threads its
    /// backend kernels into.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn xor_assign_with(&mut self, hv: &BinaryHypervector, kernels: &dyn Kernels) -> Result<()> {
        self.check_dim(hv.dim())?;
        kernels.xor_into(self.words, hv.as_words());
        Ok(())
    }

    /// XORs another row into this one in place.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn xor_assign_row(&mut self, row: HvRow<'_>) -> Result<()> {
        self.check_dim(row.dim())?;
        kernels::auto().xor_into(self.words, row.as_words());
        Ok(())
    }

    fn check_dim(&self, other: usize) -> Result<()> {
        if self.dim != other {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: other,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdcRng;

    fn rng() -> HdcRng {
        HdcRng::seed_from(0xBEEF)
    }

    #[test]
    fn zero_dimension_is_rejected_and_zero_rows_allowed() {
        assert_eq!(HvMatrix::zeros(4, 0).unwrap_err(), HdcError::ZeroDimension);
        let empty = HvMatrix::zeros(0, 128).unwrap();
        assert_eq!(empty.rows(), 0);
        assert!(empty.to_vectors().is_empty());
    }

    #[test]
    fn stride_matches_packed_word_count() {
        for (dim, stride) in [(1usize, 1usize), (64, 1), (65, 2), (1000, 16), (1024, 16)] {
            let m = HvMatrix::zeros(3, dim).unwrap();
            assert_eq!(m.stride_words(), stride, "dim {dim}");
            assert_eq!(m.as_words().len(), 3 * stride);
        }
    }

    #[test]
    fn rows_round_trip_with_binary_hypervectors() {
        let mut r = rng();
        for dim in [1usize, 63, 64, 65, 500, 1024] {
            let vectors: Vec<BinaryHypervector> = (0..5)
                .map(|_| BinaryHypervector::random(dim, &mut r))
                .collect();
            let matrix = HvMatrix::from_vectors(&vectors).unwrap();
            assert_eq!(matrix.rows(), 5);
            assert_eq!(matrix.dim(), dim);
            for (i, hv) in vectors.iter().enumerate() {
                assert_eq!(&matrix.row(i).to_hypervector(), hv, "dim {dim}, row {i}");
            }
            assert_eq!(matrix.to_vectors(), vectors);
        }
    }

    #[test]
    fn from_vectors_validates_input() {
        assert_eq!(
            HvMatrix::from_vectors(&[]).unwrap_err(),
            HdcError::EmptyInput
        );
        let mut r = rng();
        let mixed = vec![
            BinaryHypervector::random(64, &mut r),
            BinaryHypervector::random(65, &mut r),
        ];
        assert!(matches!(
            HvMatrix::from_vectors(&mixed),
            Err(HdcError::DimensionMismatch {
                left: 64,
                right: 65
            })
        ));
    }

    #[test]
    fn row_ops_match_vector_ops() {
        let mut r = rng();
        for dim in [70usize, 256, 1000] {
            let a = BinaryHypervector::random(dim, &mut r);
            let b = BinaryHypervector::random(dim, &mut r);
            let mut m = HvMatrix::zeros(2, dim).unwrap();
            m.set_row(0, &a).unwrap();
            m.set_row(1, &b).unwrap();

            assert_eq!(m.row(0).count_ones(), a.count_ones());
            assert_eq!(m.row(0).hamming(m.row(1)).unwrap(), a.hamming(&b).unwrap());
            assert_eq!(m.row(0).hamming_hv(&b).unwrap(), a.hamming(&b).unwrap());
            let ones: Vec<usize> = m.row(1).iter_ones().collect();
            let expected: Vec<usize> = b.iter_ones().collect();
            assert_eq!(ones, expected);

            // XOR-bind in place equals the allocating xor.
            m.row_mut(0).xor_assign(&b).unwrap();
            assert_eq!(m.row(0).to_hypervector(), a.xor(&b).unwrap());
            let row1 = m.row(1).to_hypervector();
            m.row_mut(0)
                .xor_assign_row(HvRow {
                    words: row1.as_words(),
                    dim,
                })
                .unwrap();
            assert_eq!(m.row(0).to_hypervector(), a);
        }
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let mut m = HvMatrix::zeros(2, 128).unwrap();
        let wrong = BinaryHypervector::zeros(64).unwrap();
        assert!(m.set_row(0, &wrong).is_err());
        assert!(m.row_mut(0).copy_from(&wrong).is_err());
        assert!(m.row_mut(0).xor_assign(&wrong).is_err());
        assert!(m.row(0).hamming_hv(&wrong).is_err());
        assert!(m
            .set_row(9, &BinaryHypervector::zeros(128).unwrap())
            .is_err());
        let other = HvMatrix::zeros(1, 64).unwrap();
        assert!(m.row(0).hamming(other.row(0)).is_err());
    }

    #[test]
    #[should_panic]
    fn out_of_range_row_view_panics() {
        let m = HvMatrix::zeros(2, 64).unwrap();
        let _ = m.row(2);
    }

    #[test]
    fn clear_and_copy_between_rows() {
        let mut r = rng();
        let a = BinaryHypervector::random(130, &mut r);
        let mut m = HvMatrix::zeros(2, 130).unwrap();
        m.set_row(0, &a).unwrap();
        let row0 = m.row(0).to_hypervector();
        m.row_mut(1)
            .copy_from_row(HvRow {
                words: row0.as_words(),
                dim: 130,
            })
            .unwrap();
        assert_eq!(m.row(1).to_hypervector(), a);
        m.row_mut(0).clear();
        assert_eq!(m.row(0).count_ones(), 0);
        // Clearing row 0 must not touch row 1.
        assert_eq!(m.row(1).to_hypervector(), a);
    }

    #[test]
    fn reset_reuses_the_backing_allocation() {
        let mut r = rng();
        let mut m = HvMatrix::zeros(10, 256).unwrap();
        for i in 0..10 {
            m.set_row(i, &BinaryHypervector::random(256, &mut r))
                .unwrap();
        }
        let peak = m.capacity_bytes();
        assert!(peak >= 10 * 4 * 8);

        // Shrinking keeps the allocation and zeroes the content.
        m.reset(3, 100).unwrap();
        assert_eq!((m.rows(), m.dim(), m.stride_words()), (3, 100, 2));
        assert_eq!(m.capacity_bytes(), peak);
        assert!(m.as_words().iter().all(|&w| w == 0));

        // Growing within a previously-seen word budget also keeps it.
        m.reset(5, 128).unwrap();
        assert_eq!(m.capacity_bytes(), peak);

        // Zero dimension stays invalid; zero rows are fine.
        assert!(m.reset(4, 0).is_err());
        m.reset(0, 64).unwrap();
        assert_eq!(m.rows(), 0);
    }

    #[test]
    fn fill_rows_writes_every_row_in_parallel() {
        let mut r = rng();
        let codebook: Vec<BinaryHypervector> = (0..7)
            .map(|_| BinaryHypervector::random(200, &mut r))
            .collect();
        let mut m = HvMatrix::zeros(100, 200).unwrap();
        m.fill_rows(|i, row| {
            row.copy_from(&codebook[i % 7]).unwrap();
            row.xor_assign(&codebook[(i + 1) % 7]).unwrap();
        });
        for i in 0..100 {
            let expected = codebook[i % 7].xor(&codebook[(i + 1) % 7]).unwrap();
            assert_eq!(m.row(i).to_hypervector(), expected, "row {i}");
        }
    }

    #[test]
    fn tail_bits_stay_clear_through_row_ops() {
        let mut r = rng();
        let a = BinaryHypervector::random(70, &mut r);
        let b = BinaryHypervector::random(70, &mut r);
        let mut m = HvMatrix::zeros(1, 70).unwrap();
        m.set_row(0, &a).unwrap();
        m.row_mut(0).xor_assign(&b).unwrap();
        // count_ones over the raw words must equal the logical popcount.
        assert_eq!(m.row(0).count_ones(), a.xor(&b).unwrap().count_ones());
        assert!(m.row(0).iter_ones().all(|i| i < 70));
    }
}
