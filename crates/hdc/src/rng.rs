use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic random number generator used for all HDC codebooks.
///
/// SegHDC's results must be reproducible across runs and platforms, so every
/// random hypervector in this workspace is derived from an [`HdcRng`] seeded
/// with an explicit `u64`. Internally this wraps a ChaCha8 stream cipher RNG,
/// which is portable (identical output on every platform) and fast enough for
/// generating codebooks of a few thousand 10 000-bit vectors.
///
/// # Example
///
/// ```rust
/// use hdc::{BinaryHypervector, HdcRng};
///
/// let mut a = HdcRng::seed_from(7);
/// let mut b = HdcRng::seed_from(7);
/// let hv_a = BinaryHypervector::random(256, &mut a);
/// let hv_b = BinaryHypervector::random(256, &mut b);
/// assert_eq!(hv_a, hv_b);
/// ```
#[derive(Debug, Clone)]
pub struct HdcRng {
    inner: ChaCha8Rng,
}

impl HdcRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator from this one.
    ///
    /// The child stream is keyed on `stream`, so two children with different
    /// stream identifiers never overlap even though they share the parent
    /// seed. This is how the position, colour and clusterer sub-systems each
    /// obtain their own reproducible randomness from a single user seed.
    pub fn derive(&self, stream: u64) -> Self {
        let mut child = self.inner.clone();
        child.set_stream(stream);
        Self { inner: child }
    }

    /// Returns the next random 64-bit word.
    pub fn next_word(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire-style rejection-free reduction is unnecessary here; modulo
        // bias is negligible for the bounds used (≤ 2^32) and determinism is
        // what matters.
        self.inner.next_u64() % bound
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.inner.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl RngCore for HdcRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = HdcRng::seed_from(123);
        let mut b = HdcRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.next_word(), b.next_word());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HdcRng::seed_from(1);
        let mut b = HdcRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_word() == b.next_word()).count();
        assert!(same < 4, "independent streams should rarely collide");
    }

    #[test]
    fn derived_streams_are_independent() {
        let parent = HdcRng::seed_from(99);
        let mut c1 = parent.derive(1);
        let mut c2 = parent.derive(2);
        let same = (0..64).filter(|_| c1.next_word() == c2.next_word()).count();
        assert!(same < 4);
    }

    #[test]
    fn derived_streams_are_reproducible() {
        let parent = HdcRng::seed_from(99);
        let mut c1 = parent.derive(7);
        let mut c2 = parent.derive(7);
        for _ in 0..16 {
            assert_eq!(c1.next_word(), c2.next_word());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = HdcRng::seed_from(5);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_unit_in_range() {
        let mut rng = HdcRng::seed_from(5);
        for _ in 0..1000 {
            let u = rng.next_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        let mut rng = HdcRng::seed_from(5);
        let _ = rng.next_below(0);
    }
}
