use crate::{kernels, HdcError, HdcRng, Result};

/// A densely packed binary hypervector.
///
/// Bits are stored 64 per `u64` word, least-significant bit first. The
/// dimension does not need to be a multiple of 64; unused bits in the last
/// word are always kept at zero so that popcount-based operations stay exact.
///
/// `BinaryHypervector` is the workhorse of the SegHDC pipeline: position and
/// colour codebooks are built by flipping contiguous bit ranges
/// ([`flip_range`](Self::flip_range)), pixel hypervectors are produced with
/// XOR binding ([`xor`](Self::xor)), and clustering uses Hamming or cosine
/// similarity.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), hdc::HdcError> {
/// use hdc::BinaryHypervector;
///
/// let mut hv = BinaryHypervector::zeros(128)?;
/// hv.flip_range(0, 64)?;
/// assert_eq!(hv.count_ones(), 64);
/// assert_eq!(hv.hamming(&BinaryHypervector::zeros(128)?)?, 64);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BinaryHypervector {
    dim: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BinaryHypervector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryHypervector")
            .field("dim", &self.dim)
            .field("ones", &self.count_ones())
            .finish()
    }
}

impl BinaryHypervector {
    fn word_count(dim: usize) -> usize {
        dim.div_ceil(64)
    }

    /// Clears any bits beyond `dim` in the final word.
    fn mask_tail(&mut self) {
        let rem = self.dim % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Creates an all-zero hypervector of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`.
    pub fn zeros(dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        Ok(Self {
            dim,
            words: vec![0; Self::word_count(dim)],
        })
    }

    /// Creates an all-one hypervector of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`.
    pub fn ones(dim: usize) -> Result<Self> {
        let mut hv = Self::zeros(dim)?;
        for w in &mut hv.words {
            *w = u64::MAX;
        }
        hv.mask_tail();
        Ok(hv)
    }

    /// Creates a random hypervector where each bit is 0 or 1 with equal
    /// probability.
    ///
    /// Random hypervectors of high dimension are pseudo-orthogonal: their
    /// normalized Hamming distance concentrates around 0.5, which is the
    /// property Lemma 1 of the SegHDC paper relies on.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`; use [`BinaryHypervector::zeros`] for the fallible
    /// checked constructor pattern.
    pub fn random(dim: usize, rng: &mut HdcRng) -> Self {
        assert!(dim > 0, "dimension must be non-zero");
        let mut hv = Self {
            dim,
            words: (0..Self::word_count(dim))
                .map(|_| rng.next_word())
                .collect(),
        };
        hv.mask_tail();
        hv
    }

    /// Builds a hypervector of dimension `dim` from packed 64-bit words
    /// (64 bits per word, least-significant bit first) — the inverse of
    /// [`as_words`](Self::as_words). Bits beyond `dim` in the final word are
    /// cleared.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0` and
    /// [`HdcError::DimensionMismatch`] if `words` does not hold exactly
    /// `dim.div_ceil(64)` words.
    pub fn from_words(dim: usize, words: Vec<u64>) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        if words.len() != Self::word_count(dim) {
            return Err(HdcError::DimensionMismatch {
                left: Self::word_count(dim) * 64,
                right: words.len() * 64,
            });
        }
        let mut hv = Self { dim, words };
        hv.mask_tail();
        Ok(hv)
    }

    /// Builds a hypervector from a slice of booleans (one per bit).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `bits` is empty.
    pub fn from_bits(bits: &[bool]) -> Result<Self> {
        let mut hv = Self::zeros(bits.len())?;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                hv.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        Ok(hv)
    }

    /// Returns the dimension (number of bits).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the packed 64-bit words backing this hypervector.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes held by the packed word buffer — the number that matters
    /// when accounting codebooks (collections of hypervectors) against a
    /// byte-capacity budget, e.g. the segmentation engine's codebook cache.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }

    /// Returns the value of bit `index`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `index >= dim`.
    pub fn bit(&self, index: usize) -> Result<bool> {
        if index >= self.dim {
            return Err(HdcError::IndexOutOfBounds {
                index,
                dim: self.dim,
            });
        }
        Ok((self.words[index / 64] >> (index % 64)) & 1 == 1)
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `index >= dim`.
    pub fn set_bit(&mut self, index: usize, value: bool) -> Result<()> {
        if index >= self.dim {
            return Err(HdcError::IndexOutOfBounds {
                index,
                dim: self.dim,
            });
        }
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
        Ok(())
    }

    /// Flips (inverts) bit `index`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `index >= dim`.
    pub fn flip_bit(&mut self, index: usize) -> Result<()> {
        if index >= self.dim {
            return Err(HdcError::IndexOutOfBounds {
                index,
                dim: self.dim,
            });
        }
        self.words[index / 64] ^= 1u64 << (index % 64);
        Ok(())
    }

    /// Flips `len` consecutive bits starting at `start`.
    ///
    /// This is the primitive used by the Manhattan-distance encoders of the
    /// SegHDC paper: flipping disjoint ranges of length `x` adds exactly `x`
    /// to the Hamming distance per step.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::IndexOutOfBounds`] if `start + len > dim`.
    pub fn flip_range(&mut self, start: usize, len: usize) -> Result<()> {
        let end = start.checked_add(len).ok_or(HdcError::IndexOutOfBounds {
            index: usize::MAX,
            dim: self.dim,
        })?;
        if end > self.dim {
            return Err(HdcError::IndexOutOfBounds {
                index: end,
                dim: self.dim,
            });
        }
        if len == 0 {
            return Ok(());
        }
        let first_word = start / 64;
        let last_word = (end - 1) / 64;
        if first_word == last_word {
            let mask = bit_span_mask(start % 64, end - start);
            self.words[first_word] ^= mask;
            return Ok(());
        }
        // Leading partial word.
        self.words[first_word] ^= bit_span_mask(start % 64, 64 - start % 64);
        // Full middle words.
        for word in &mut self.words[first_word + 1..last_word] {
            *word ^= u64::MAX;
        }
        // Trailing partial word.
        let tail_bits = end - last_word * 64;
        self.words[last_word] ^= bit_span_mask(0, tail_bits);
        Ok(())
    }

    /// Returns the number of bits set to one.
    pub fn count_ones(&self) -> usize {
        kernels::auto().popcount(&self.words) as usize
    }

    /// Returns the Hamming distance (number of differing bits) to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn hamming(&self, other: &Self) -> Result<usize> {
        self.check_dim(other)?;
        Ok(kernels::auto().hamming(&self.words, &other.words) as usize)
    }

    /// Returns the normalized Hamming distance (`hamming / dim`) in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn normalized_hamming(&self, other: &Self) -> Result<f64> {
        Ok(self.hamming(other)? as f64 / self.dim as f64)
    }

    /// Returns the cosine similarity between the two `{0, 1}` vectors.
    ///
    /// Zero vectors have zero similarity with everything by convention.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn cosine_similarity(&self, other: &Self) -> Result<f64> {
        self.check_dim(other)?;
        let dot = kernels::auto().and_popcount(&self.words, &other.words) as usize;
        let na = self.count_ones() as f64;
        let nb = other.count_ones() as f64;
        if na == 0.0 || nb == 0.0 {
            return Ok(0.0);
        }
        Ok(dot as f64 / (na.sqrt() * nb.sqrt()))
    }

    /// Returns a new hypervector equal to the element-wise XOR of `self` and
    /// `other` (the HDC *binding* operation).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn xor(&self, other: &Self) -> Result<Self> {
        self.check_dim(other)?;
        let mut out = self.clone();
        out.xor_assign(other)?;
        Ok(out)
    }

    /// XORs `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn xor_assign(&mut self, other: &Self) -> Result<()> {
        self.check_dim(other)?;
        kernels::auto().xor_into(&mut self.words, &other.words);
        Ok(())
    }

    /// Returns a new hypervector equal to the element-wise AND.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
    pub fn and(&self, other: &Self) -> Result<Self> {
        self.check_dim(other)?;
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        Ok(Self {
            dim: self.dim,
            words,
        })
    }

    /// Returns the bitwise complement of this hypervector.
    pub fn not(&self) -> Self {
        let mut out = Self {
            dim: self.dim,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// Concatenates two hypervectors into one of dimension
    /// `self.dim() + other.dim()`.
    ///
    /// The SegHDC colour encoder concatenates one chunk per colour channel.
    pub fn concat(&self, other: &Self) -> Self {
        let mut bits = self.to_bits();
        bits.extend(other.to_bits());
        Self::from_bits(&bits).expect("concatenation of non-empty vectors is non-empty")
    }

    /// Expands this hypervector into a `Vec<bool>` with one entry per bit.
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.dim)
            .map(|i| (self.words[i / 64] >> (i % 64)) & 1 == 1)
            .collect()
    }

    /// Iterates over the indices of the bits that are set to one.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        kernels::iter_set_bits(&self.words)
    }

    fn check_dim(&self, other: &Self) -> Result<()> {
        if self.dim != other.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: other.dim,
            });
        }
        Ok(())
    }
}

/// A mask with `len` consecutive one bits starting at bit `start` (all within
/// one 64-bit word).
fn bit_span_mask(start: usize, len: usize) -> u64 {
    debug_assert!(start + len <= 64);
    if len == 0 {
        return 0;
    }
    if len == 64 {
        return u64::MAX;
    }
    ((1u64 << len) - 1) << start
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> HdcRng {
        HdcRng::seed_from(0xC0FFEE)
    }

    #[test]
    fn zeros_and_ones_have_expected_popcount() {
        let z = BinaryHypervector::zeros(1000).unwrap();
        assert_eq!(z.count_ones(), 0);
        let o = BinaryHypervector::ones(1000).unwrap();
        assert_eq!(o.count_ones(), 1000);
    }

    #[test]
    fn zero_dimension_is_rejected() {
        assert_eq!(
            BinaryHypervector::zeros(0).unwrap_err(),
            HdcError::ZeroDimension
        );
        assert_eq!(
            BinaryHypervector::ones(0).unwrap_err(),
            HdcError::ZeroDimension
        );
        assert_eq!(
            BinaryHypervector::from_bits(&[]).unwrap_err(),
            HdcError::ZeroDimension
        );
    }

    #[test]
    fn tail_bits_stay_clear_for_non_multiple_of_64_dims() {
        let o = BinaryHypervector::ones(70).unwrap();
        assert_eq!(o.count_ones(), 70);
        let mut r = BinaryHypervector::random(70, &mut rng());
        r.flip_range(0, 70).unwrap();
        assert!(r.count_ones() <= 70);
        let n = r.not();
        assert_eq!(n.count_ones() + r.count_ones(), 70);
    }

    #[test]
    fn bit_get_set_flip_roundtrip() {
        let mut hv = BinaryHypervector::zeros(130).unwrap();
        hv.set_bit(129, true).unwrap();
        assert!(hv.bit(129).unwrap());
        hv.flip_bit(129).unwrap();
        assert!(!hv.bit(129).unwrap());
        assert_eq!(hv.count_ones(), 0);
    }

    #[test]
    fn out_of_bounds_accesses_error() {
        let mut hv = BinaryHypervector::zeros(10).unwrap();
        assert!(matches!(
            hv.bit(10),
            Err(HdcError::IndexOutOfBounds { index: 10, dim: 10 })
        ));
        assert!(hv.set_bit(11, true).is_err());
        assert!(hv.flip_bit(10).is_err());
        assert!(hv.flip_range(5, 6).is_err());
    }

    #[test]
    fn flip_range_adds_exact_hamming_distance() {
        let base = BinaryHypervector::random(10_000, &mut rng());
        for (start, len) in [
            (0usize, 37usize),
            (63, 2),
            (64, 64),
            (100, 431),
            (9_000, 1_000),
        ] {
            let mut flipped = base.clone();
            flipped.flip_range(start, len).unwrap();
            assert_eq!(
                base.hamming(&flipped).unwrap(),
                len,
                "start={start} len={len}"
            );
        }
    }

    #[test]
    fn flip_range_twice_is_identity() {
        let base = BinaryHypervector::random(777, &mut rng());
        let mut hv = base.clone();
        hv.flip_range(13, 200).unwrap();
        hv.flip_range(13, 200).unwrap();
        assert_eq!(hv, base);
    }

    #[test]
    fn flip_range_of_zero_length_is_noop() {
        let base = BinaryHypervector::random(100, &mut rng());
        let mut hv = base.clone();
        hv.flip_range(50, 0).unwrap();
        assert_eq!(hv, base);
    }

    #[test]
    fn xor_binding_is_involutive_and_distance_preserving() {
        let mut r = rng();
        let a = BinaryHypervector::random(2048, &mut r);
        let b = BinaryHypervector::random(2048, &mut r);
        let c = BinaryHypervector::random(2048, &mut r);
        let ab = a.xor(&b).unwrap();
        assert_eq!(ab.xor(&b).unwrap(), a);
        // Binding with the same vector preserves pairwise distances.
        let d_before = a.hamming(&c).unwrap();
        let d_after = a.xor(&b).unwrap().hamming(&c.xor(&b).unwrap()).unwrap();
        assert_eq!(d_before, d_after);
    }

    #[test]
    fn random_vectors_are_pseudo_orthogonal() {
        let mut r = rng();
        let a = BinaryHypervector::random(10_000, &mut r);
        let b = BinaryHypervector::random(10_000, &mut r);
        let nh = a.normalized_hamming(&b).unwrap();
        assert!((nh - 0.5).abs() < 0.05, "normalized hamming {nh}");
        let ones = a.count_ones() as f64 / 10_000.0;
        assert!((ones - 0.5).abs() < 0.05);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = BinaryHypervector::zeros(64).unwrap();
        let b = BinaryHypervector::zeros(65).unwrap();
        assert!(matches!(
            a.hamming(&b),
            Err(HdcError::DimensionMismatch {
                left: 64,
                right: 65
            })
        ));
        assert!(a.xor(&b).is_err());
        assert!(a.and(&b).is_err());
        assert!(a.cosine_similarity(&b).is_err());
    }

    #[test]
    fn cosine_similarity_of_identical_vectors_is_one() {
        let a = BinaryHypervector::random(4096, &mut rng());
        let sim = a.cosine_similarity(&a).unwrap();
        assert!((sim - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_similarity_with_zero_vector_is_zero() {
        let a = BinaryHypervector::random(512, &mut rng());
        let z = BinaryHypervector::zeros(512).unwrap();
        assert_eq!(a.cosine_similarity(&z).unwrap(), 0.0);
        assert_eq!(z.cosine_similarity(&z).unwrap(), 0.0);
    }

    #[test]
    fn concat_preserves_both_halves() {
        let mut r = rng();
        let a = BinaryHypervector::random(100, &mut r);
        let b = BinaryHypervector::random(60, &mut r);
        let c = a.concat(&b);
        assert_eq!(c.dim(), 160);
        for i in 0..100 {
            assert_eq!(c.bit(i).unwrap(), a.bit(i).unwrap());
        }
        for i in 0..60 {
            assert_eq!(c.bit(100 + i).unwrap(), b.bit(i).unwrap());
        }
    }

    #[test]
    fn iter_ones_matches_to_bits() {
        let hv = BinaryHypervector::random(300, &mut rng());
        let from_iter: Vec<usize> = hv.iter_ones().collect();
        let from_bits: Vec<usize> = hv
            .to_bits()
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        assert_eq!(from_iter, from_bits);
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits: Vec<bool> = (0..131).map(|i| i % 3 == 0).collect();
        let hv = BinaryHypervector::from_bits(&bits).unwrap();
        assert_eq!(hv.to_bits(), bits);
    }

    #[test]
    fn debug_output_is_nonempty_and_compact() {
        let hv = BinaryHypervector::zeros(64).unwrap();
        let s = format!("{hv:?}");
        assert!(s.contains("dim"));
        assert!(s.contains("64"));
    }
}
