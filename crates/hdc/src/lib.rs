//! Brain-inspired hyperdimensional computing (HDC) substrate.
//!
//! This crate provides the low-level vector machinery used by the SegHDC
//! segmentation pipeline (DAC 2023):
//!
//! * [`BinaryHypervector`] — a densely packed (64 bits per word) binary
//!   hypervector with XOR binding, bit flipping, Hamming/cosine similarity
//!   and deterministic random generation.
//! * [`HvMatrix`] — a batch of packed hypervectors in one contiguous
//!   structure-of-arrays buffer, accessed through the [`HvRow`] /
//!   [`HvRowMut`] views. This is the allocation-free storage the SegHDC
//!   hot path (batch encoding and clustering) runs on; rows round-trip
//!   with [`BinaryHypervector`] bit-for-bit.
//! * [`Accumulator`] — an integer "bundled" hypervector used as a K-Means
//!   centroid: the element-wise sum of many binary hypervectors (or matrix
//!   rows), stored as a vertical (bit-sliced) counter and updated by
//!   word-parallel bit-serial adds, with cosine similarity against binary
//!   vectors.
//! * [`kernels`] — the unified word-level bit-kernel layer every hot loop
//!   above dispatches through: a [`kernels::Kernels`] trait with a scalar
//!   reference implementation and runtime-detected SIMD (AVX2/NEON) behind
//!   the `simd` feature.
//! * [`ItemMemory`] / [`LevelMemory`] — classical HDC codebooks: random
//!   (pseudo-orthogonal) item memories and linearly-correlated level
//!   memories built by progressive bit flipping.
//! * [`similarity`] — free functions for Hamming and cosine metrics.
//! * [`permutation`] — cyclic rotations used for sequence binding.
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), hdc::HdcError> {
//! use hdc::{BinaryHypervector, HdcRng};
//!
//! let mut rng = HdcRng::seed_from(42);
//! let a = BinaryHypervector::random(1024, &mut rng);
//! let b = BinaryHypervector::random(1024, &mut rng);
//!
//! // Random hypervectors are pseudo-orthogonal: normalized Hamming ≈ 0.5.
//! let nh = a.normalized_hamming(&b)?;
//! assert!((nh - 0.5).abs() < 0.1);
//!
//! // XOR binding is its own inverse.
//! let bound = a.xor(&b)?;
//! assert_eq!(bound.xor(&b)?, a);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the SIMD kernel module (`kernels::simd`) is
// the single place allowed to opt back in — vendor intrinsics require
// `unsafe` — and does so behind runtime CPU detection. Everything else in
// the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod binary;
mod error;
mod item_memory;
pub mod kernels;
mod matrix;
pub mod permutation;
mod rng;
pub mod similarity;

pub use accumulator::{Accumulator, BitSlicedCounts, BitSlicedGroup};
pub use binary::BinaryHypervector;
pub use error::HdcError;
pub use item_memory::{ItemMemory, LevelMemory};
pub use matrix::{HvMatrix, HvRow, HvRowMut};
pub use rng::HdcRng;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HdcError>;
