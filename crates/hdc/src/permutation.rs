//! Cyclic permutation (rotation) of hypervectors.
//!
//! Rotation is the classical HDC operation for encoding order or sequence
//! position. SegHDC itself binds positions through its Manhattan-distance
//! codebooks instead, but rotation is provided for completeness and is used
//! by the ablation benchmarks to contrast with permutation-based position
//! encodings.

use crate::{BinaryHypervector, Result};

/// Rotates a hypervector left (towards lower bit indices) by `amount` bits.
///
/// The rotation is cyclic: bits shifted off the front reappear at the back.
/// Rotation preserves pairwise Hamming distances and popcount.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), hdc::HdcError> {
/// use hdc::{permutation, BinaryHypervector};
/// let hv = BinaryHypervector::from_bits(&[true, false, false, false])?;
/// let rotated = permutation::rotate_left(&hv, 1)?;
/// assert_eq!(rotated.to_bits(), vec![false, false, false, true]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// This function currently cannot fail but returns `Result` for uniformity
/// with the rest of the crate API.
pub fn rotate_left(hv: &BinaryHypervector, amount: usize) -> Result<BinaryHypervector> {
    let dim = hv.dim();
    let amount = amount % dim;
    if amount == 0 {
        return Ok(hv.clone());
    }
    let bits = hv.to_bits();
    let mut rotated = vec![false; dim];
    for (i, &b) in bits.iter().enumerate() {
        rotated[(i + dim - amount) % dim] = b;
    }
    BinaryHypervector::from_bits(&rotated)
}

/// Rotates a hypervector right (towards higher bit indices) by `amount` bits.
///
/// # Errors
///
/// This function currently cannot fail but returns `Result` for uniformity
/// with the rest of the crate API.
pub fn rotate_right(hv: &BinaryHypervector, amount: usize) -> Result<BinaryHypervector> {
    let dim = hv.dim();
    rotate_left(hv, dim - (amount % dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdcRng;

    #[test]
    fn rotate_by_zero_is_identity() {
        let hv = BinaryHypervector::random(100, &mut HdcRng::seed_from(1));
        assert_eq!(rotate_left(&hv, 0).unwrap(), hv);
        assert_eq!(rotate_left(&hv, 100).unwrap(), hv);
    }

    #[test]
    fn left_then_right_is_identity() {
        let hv = BinaryHypervector::random(257, &mut HdcRng::seed_from(2));
        for amount in [1, 13, 64, 200] {
            let round = rotate_right(&rotate_left(&hv, amount).unwrap(), amount).unwrap();
            assert_eq!(round, hv, "amount={amount}");
        }
    }

    #[test]
    fn rotation_preserves_popcount_and_distance() {
        let mut rng = HdcRng::seed_from(3);
        let a = BinaryHypervector::random(512, &mut rng);
        let b = BinaryHypervector::random(512, &mut rng);
        let ra = rotate_left(&a, 37).unwrap();
        let rb = rotate_left(&b, 37).unwrap();
        assert_eq!(ra.count_ones(), a.count_ones());
        assert_eq!(ra.hamming(&rb).unwrap(), a.hamming(&b).unwrap());
    }

    #[test]
    fn rotation_decorrelates_a_vector_from_itself() {
        let hv = BinaryHypervector::random(10_000, &mut HdcRng::seed_from(4));
        let rotated = rotate_left(&hv, 1).unwrap();
        let nh = hv.normalized_hamming(&rotated).unwrap();
        assert!((nh - 0.5).abs() < 0.05, "rotation should look random: {nh}");
    }
}
