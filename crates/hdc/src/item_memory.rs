use crate::{BinaryHypervector, HdcError, HdcRng, Result};

/// A codebook of independent random hypervectors ("item memory").
///
/// Each entry is generated independently, so all entries are pseudo-orthogonal
/// to each other. This is the structure used by the paper's **RPos** and
/// **RColor** ablations, where position or colour values are mapped to
/// unrelated random hypervectors instead of Manhattan-distance-preserving
/// ones.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), hdc::HdcError> {
/// use hdc::{HdcRng, ItemMemory};
/// let mut rng = HdcRng::seed_from(9);
/// let memory = ItemMemory::new(16, 2048, &mut rng)?;
/// let a = memory.item(0).ok_or(hdc::HdcError::EmptyInput)?;
/// let b = memory.item(1).ok_or(hdc::HdcError::EmptyInput)?;
/// assert!((a.normalized_hamming(b)? - 0.5).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ItemMemory {
    items: Vec<BinaryHypervector>,
    dim: usize,
}

impl ItemMemory {
    /// Generates `count` independent random hypervectors of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0` and
    /// [`HdcError::InvalidParameter`] if `count == 0`.
    pub fn new(count: usize, dim: usize, rng: &mut HdcRng) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        if count == 0 {
            return Err(HdcError::InvalidParameter {
                message: "item memory must contain at least one item".to_string(),
            });
        }
        let items = (0..count)
            .map(|_| BinaryHypervector::random(dim, rng))
            .collect();
        Ok(Self { items, dim })
    }

    /// Returns the number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the memory holds no items (never the case for a
    /// successfully constructed memory).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns the hypervector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the item at `index`, if it exists.
    pub fn item(&self, index: usize) -> Option<&BinaryHypervector> {
        self.items.get(index)
    }

    /// Returns all items as a slice.
    pub fn items(&self) -> &[BinaryHypervector] {
        &self.items
    }

    /// Finds the index of the stored item closest (by Hamming distance) to
    /// `query` — the classical HDC associative recall operation.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `query` has a different
    /// dimension than the memory.
    pub fn recall(&self, query: &BinaryHypervector) -> Result<usize> {
        crate::similarity::nearest_by_hamming(query, &self.items)
    }
}

/// A level memory: a codebook whose Hamming distances follow the numeric
/// distance between level indices (progressive flipping).
///
/// Level `0` is a random base vector; level `i` flips the next `flip_unit`
/// bits relative to level `i - 1`, within the configured span of the vector.
/// Consequently `hamming(level(a), level(b)) == |a - b| * flip_unit` as long
/// as the flips fit inside the span, which is exactly the Manhattan-distance
/// property used by the SegHDC colour encoder.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), hdc::HdcError> {
/// use hdc::{HdcRng, LevelMemory};
/// let mut rng = HdcRng::seed_from(10);
/// let levels = LevelMemory::new(8, 1024, 16, &mut rng)?;
/// let d = levels.level(1).hamming(levels.level(6))?;
/// assert_eq!(d, 5 * 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LevelMemory {
    levels: Vec<BinaryHypervector>,
    flip_unit: usize,
}

impl LevelMemory {
    /// Builds a level memory with `levels` entries of dimension `dim`,
    /// flipping `flip_unit` fresh bits per level over the whole vector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`,
    /// [`HdcError::InvalidParameter`] if `levels == 0`, or
    /// [`HdcError::IndexOutOfBounds`] if `(levels - 1) * flip_unit > dim`
    /// (the flips would run off the end of the vector).
    pub fn new(levels: usize, dim: usize, flip_unit: usize, rng: &mut HdcRng) -> Result<Self> {
        Self::with_span(levels, dim, flip_unit, 0, dim, rng)
    }

    /// Builds a level memory whose progressive flips are confined to the bit
    /// range `[span_start, span_start + span_len)`.
    ///
    /// Confining flips to disjoint spans is how the SegHDC position encoder
    /// keeps row and column distances from cancelling each other (§III-1).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ZeroDimension`] if `dim == 0`,
    /// [`HdcError::InvalidParameter`] if `levels == 0` or the span lies
    /// outside the vector, or [`HdcError::IndexOutOfBounds`] if the flips do
    /// not fit inside the span.
    pub fn with_span(
        levels: usize,
        dim: usize,
        flip_unit: usize,
        span_start: usize,
        span_len: usize,
        rng: &mut HdcRng,
    ) -> Result<Self> {
        if dim == 0 {
            return Err(HdcError::ZeroDimension);
        }
        if levels == 0 {
            return Err(HdcError::InvalidParameter {
                message: "level memory must contain at least one level".to_string(),
            });
        }
        if span_start + span_len > dim {
            return Err(HdcError::InvalidParameter {
                message: format!(
                    "span [{span_start}, {}) exceeds dimension {dim}",
                    span_start + span_len
                ),
            });
        }
        let required = (levels - 1) * flip_unit;
        if required > span_len {
            return Err(HdcError::IndexOutOfBounds {
                index: span_start + required,
                dim: span_start + span_len,
            });
        }
        let base = BinaryHypervector::random(dim, rng);
        let mut levels_vec = Vec::with_capacity(levels);
        let mut current = base;
        levels_vec.push(current.clone());
        for i in 1..levels {
            current.flip_range(span_start + (i - 1) * flip_unit, flip_unit)?;
            levels_vec.push(current.clone());
        }
        Ok(Self {
            levels: levels_vec,
            flip_unit,
        })
    }

    /// Returns the number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Returns `true` if there are no levels (never the case for a
    /// successfully constructed memory).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Returns the flip unit (bits flipped per level step).
    pub fn flip_unit(&self) -> usize {
        self.flip_unit
    }

    /// Returns the hypervector for `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= len()`.
    pub fn level(&self, level: usize) -> &BinaryHypervector {
        &self.levels[level]
    }

    /// Returns the hypervector for `level`, or `None` if out of range.
    pub fn get(&self, level: usize) -> Option<&BinaryHypervector> {
        self.levels.get(level)
    }

    /// Returns all level hypervectors.
    pub fn levels(&self) -> &[BinaryHypervector] {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> HdcRng {
        HdcRng::seed_from(21)
    }

    #[test]
    fn item_memory_rejects_degenerate_parameters() {
        assert!(ItemMemory::new(0, 128, &mut rng()).is_err());
        assert!(ItemMemory::new(4, 0, &mut rng()).is_err());
    }

    #[test]
    fn item_memory_items_are_pseudo_orthogonal() {
        let memory = ItemMemory::new(10, 10_000, &mut rng()).unwrap();
        for i in 0..memory.len() {
            for j in (i + 1)..memory.len() {
                let nh = memory
                    .item(i)
                    .unwrap()
                    .normalized_hamming(memory.item(j).unwrap())
                    .unwrap();
                assert!((nh - 0.5).abs() < 0.05, "items {i},{j}: {nh}");
            }
        }
    }

    #[test]
    fn item_memory_recall_recovers_noisy_items() {
        let mut r = rng();
        let memory = ItemMemory::new(16, 4096, &mut r).unwrap();
        for idx in 0..memory.len() {
            let mut noisy = memory.item(idx).unwrap().clone();
            // Flip 10% of the bits; recall should still find the original.
            noisy.flip_range(0, 409).unwrap();
            assert_eq!(memory.recall(&noisy).unwrap(), idx);
        }
    }

    #[test]
    fn level_memory_distances_are_linear_in_level_gap() {
        let levels = LevelMemory::new(256, 10_000, 30, &mut rng()).unwrap();
        for (a, b) in [(0usize, 255usize), (10, 20), (100, 101), (5, 5)] {
            let d = levels.level(a).hamming(levels.level(b)).unwrap();
            assert_eq!(d, a.abs_diff(b) * 30, "levels {a},{b}");
        }
    }

    #[test]
    fn level_memory_with_span_flips_only_inside_span() {
        let levels = LevelMemory::with_span(8, 1000, 50, 500, 500, &mut rng()).unwrap();
        let base = levels.level(0);
        let last = levels.level(7);
        // Bits outside the span are untouched.
        for i in 0..500 {
            assert_eq!(base.bit(i).unwrap(), last.bit(i).unwrap());
        }
        assert_eq!(base.hamming(last).unwrap(), 7 * 50);
    }

    #[test]
    fn level_memory_rejects_flips_exceeding_span() {
        assert!(matches!(
            LevelMemory::new(256, 1000, 30, &mut rng()),
            Err(HdcError::IndexOutOfBounds { .. })
        ));
        assert!(LevelMemory::with_span(10, 100, 5, 80, 40, &mut rng()).is_err());
        assert!(LevelMemory::new(0, 100, 5, &mut rng()).is_err());
    }

    #[test]
    fn level_memory_zero_flip_unit_gives_identical_levels() {
        let levels = LevelMemory::new(16, 512, 0, &mut rng()).unwrap();
        for i in 1..16 {
            assert_eq!(levels.level(0), levels.level(i));
        }
    }
}
