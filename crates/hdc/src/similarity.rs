//! Free-function similarity and distance metrics between hypervectors.
//!
//! The methods on [`BinaryHypervector`] and [`Accumulator`](crate::Accumulator)
//! cover the common cases; this module adds batch helpers used by the
//! clusterer and the experiment harnesses.

use crate::{BinaryHypervector, HdcError, Result};

/// Hamming distance between two binary hypervectors.
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), hdc::HdcError> {
/// use hdc::{similarity, BinaryHypervector};
/// let a = BinaryHypervector::from_bits(&[true, false, true])?;
/// let b = BinaryHypervector::from_bits(&[true, true, false])?;
/// assert_eq!(similarity::hamming(&a, &b)?, 2);
/// # Ok(())
/// # }
/// ```
pub fn hamming(a: &BinaryHypervector, b: &BinaryHypervector) -> Result<usize> {
    a.hamming(b)
}

/// Normalized Hamming distance in `[0, 1]`.
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
pub fn normalized_hamming(a: &BinaryHypervector, b: &BinaryHypervector) -> Result<f64> {
    a.normalized_hamming(b)
}

/// Cosine similarity between two binary hypervectors.
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
pub fn cosine(a: &BinaryHypervector, b: &BinaryHypervector) -> Result<f64> {
    a.cosine_similarity(b)
}

/// Cosine distance (`1 - cosine similarity`) between two binary hypervectors.
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] if the dimensions differ.
pub fn cosine_distance(a: &BinaryHypervector, b: &BinaryHypervector) -> Result<f64> {
    Ok(1.0 - a.cosine_similarity(b)?)
}

/// Index of the candidate with the smallest Hamming distance to `query`.
///
/// Ties are resolved in favour of the lowest index, which keeps the result
/// deterministic.
///
/// # Errors
///
/// Returns [`HdcError::EmptyInput`] if `candidates` is empty, or
/// [`HdcError::DimensionMismatch`] if any candidate has a different dimension.
pub fn nearest_by_hamming(
    query: &BinaryHypervector,
    candidates: &[BinaryHypervector],
) -> Result<usize> {
    if candidates.is_empty() {
        return Err(HdcError::EmptyInput);
    }
    let mut best = 0;
    let mut best_dist = usize::MAX;
    for (i, c) in candidates.iter().enumerate() {
        let d = query.hamming(c)?;
        if d < best_dist {
            best_dist = d;
            best = i;
        }
    }
    Ok(best)
}

/// Pairwise Hamming distance matrix (row-major, `n x n`) of a set of
/// hypervectors. Used to regenerate the distance grids of Fig. 3.
///
/// # Errors
///
/// Returns [`HdcError::DimensionMismatch`] if the vectors do not all share
/// the same dimension.
pub fn hamming_matrix(hvs: &[BinaryHypervector]) -> Result<Vec<Vec<usize>>> {
    let n = hvs.len();
    let mut out = vec![vec![0usize; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = hvs[i].hamming(&hvs[j])?;
            out[i][j] = d;
            out[j][i] = d;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HdcRng;

    #[test]
    fn free_functions_agree_with_methods() {
        let mut rng = HdcRng::seed_from(11);
        let a = BinaryHypervector::random(512, &mut rng);
        let b = BinaryHypervector::random(512, &mut rng);
        assert_eq!(hamming(&a, &b).unwrap(), a.hamming(&b).unwrap());
        assert_eq!(
            normalized_hamming(&a, &b).unwrap(),
            a.normalized_hamming(&b).unwrap()
        );
        assert!((cosine(&a, &b).unwrap() + cosine_distance(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_by_hamming_finds_self() {
        let mut rng = HdcRng::seed_from(12);
        let candidates: Vec<BinaryHypervector> = (0..8)
            .map(|_| BinaryHypervector::random(1024, &mut rng))
            .collect();
        for (i, c) in candidates.iter().enumerate() {
            assert_eq!(nearest_by_hamming(c, &candidates).unwrap(), i);
        }
    }

    #[test]
    fn nearest_by_hamming_empty_candidates_error() {
        let q = BinaryHypervector::zeros(8).unwrap();
        assert_eq!(
            nearest_by_hamming(&q, &[]).unwrap_err(),
            HdcError::EmptyInput
        );
    }

    #[test]
    fn nearest_by_hamming_prefers_lowest_index_on_tie() {
        let z = BinaryHypervector::zeros(8).unwrap();
        let candidates = vec![z.clone(), z.clone()];
        assert_eq!(nearest_by_hamming(&z, &candidates).unwrap(), 0);
    }

    #[test]
    fn hamming_matrix_is_symmetric_with_zero_diagonal() {
        let mut rng = HdcRng::seed_from(13);
        let hvs: Vec<BinaryHypervector> = (0..5)
            .map(|_| BinaryHypervector::random(256, &mut rng))
            .collect();
        let m = hamming_matrix(&hvs).unwrap();
        for (i, m_row) in m.iter().enumerate() {
            assert_eq!(m_row[i], 0);
            for (j, value) in m_row.iter().enumerate() {
                assert_eq!(*value, m[j][i]);
            }
        }
    }

    #[test]
    fn hamming_matrix_dimension_mismatch_errors() {
        let a = BinaryHypervector::zeros(8).unwrap();
        let b = BinaryHypervector::zeros(16).unwrap();
        assert!(hamming_matrix(&[a, b]).is_err());
    }
}
