//! CNN-based unsupervised segmentation baseline.
//!
//! This crate reimplements the method the SegHDC paper (DAC 2023) compares
//! against: *"Unsupervised learning of image segmentation based on
//! differentiable feature clustering"* by Kim, Kanezaki and Tanaka
//! (IEEE TIP 2020, reference \[16\] of the paper). The method trains a small
//! CNN **per image**:
//!
//! 1. the network produces a response map with `feature_channels` channels;
//! 2. per-pixel argmax over the channels yields *self-labels*;
//! 3. the network is updated to minimise softmax cross-entropy against its
//!    own self-labels plus a spatial-continuity loss;
//! 4. steps 1–3 repeat until the iteration budget is exhausted or the number
//!    of distinct labels falls below `min_labels`.
//!
//! The result is an unsupervised segmentation whose cluster count adapts to
//! the image. The implementation mirrors the reference defaults (100
//! channels, 2 convolution blocks plus a 1×1 classifier, SGD with learning
//! rate 0.1 and momentum 0.9) while letting the experiment harnesses scale
//! the configuration down to fit their compute budget.
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cnn_baseline::{KimConfig, KimSegmenter};
//! use imaging::{DynamicImage, GrayImage};
//!
//! let image = DynamicImage::Gray(GrayImage::filled(16, 16, 40)?);
//! let config = KimConfig::tiny(); // scaled-down settings for quick runs
//! let outcome = KimSegmenter::new(config)?.segment(&image)?;
//! assert_eq!(outcome.label_map.width(), 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod segmenter;

pub use config::KimConfig;
pub use error::BaselineError;
pub use segmenter::{KimOutcome, KimSegmenter};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, BaselineError>;
