use crate::{KimConfig, Result};
use imaging::{DynamicImage, LabelMap};
use neuralnet::{loss, BatchNorm2d, Conv2d, Layer, Relu, Sequential, Sgd, Tensor};

/// Result of running the CNN baseline on one image.
#[derive(Debug, Clone)]
pub struct KimOutcome {
    /// Final per-pixel cluster assignment (arbitrary cluster identifiers).
    pub label_map: LabelMap,
    /// Number of self-training iterations actually executed.
    pub iterations_run: usize,
    /// Number of distinct labels in the final assignment.
    pub final_label_count: usize,
    /// Combined loss (cross-entropy + weighted continuity) per iteration.
    pub losses: Vec<f32>,
    /// Number of learnable parameters in the network that was trained.
    pub parameter_count: usize,
}

/// The Kim et al. unsupervised CNN segmenter.
///
/// Each call to [`segment`](KimSegmenter::segment) builds a fresh network
/// (the method trains per image) and runs the self-labelling training loop
/// described in the crate documentation.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cnn_baseline::{KimConfig, KimSegmenter};
/// use imaging::{DynamicImage, GrayImage};
///
/// let mut image = GrayImage::filled(12, 12, 30)?;
/// for y in 0..12 {
///     for x in 6..12 {
///         image.set(x, y, 220)?;
///     }
/// }
/// let outcome = KimSegmenter::new(KimConfig::tiny())?.segment(&DynamicImage::Gray(image))?;
/// assert!(outcome.final_label_count >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KimSegmenter {
    config: KimConfig,
}

impl KimSegmenter {
    /// Creates a segmenter with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BaselineError::InvalidConfig`] if the configuration
    /// is inconsistent.
    pub fn new(config: KimConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration this segmenter runs with.
    pub fn config(&self) -> &KimConfig {
        &self.config
    }

    /// Converts an image to a normalised `[1, C, H, W]` tensor in `[0, 1]`.
    fn image_to_tensor(image: &DynamicImage) -> Result<Tensor> {
        let (width, height, channels) = (image.width(), image.height(), image.channels());
        let mut data = vec![0.0f32; channels * height * width];
        for y in 0..height {
            for x in 0..width {
                let px = image.channels_at(x, y)?;
                for c in 0..channels {
                    data[(c * height + y) * width + x] = f32::from(px[c]) / 255.0;
                }
            }
        }
        Ok(Tensor::from_vec([1, channels, height, width], data)?)
    }

    /// Builds the per-image network:
    /// `conv_blocks` × (3×3 conv → BN → ReLU) followed by a 1×1 conv → BN
    /// classifier with `feature_channels` outputs.
    fn build_network(&self, in_channels: usize) -> Result<Sequential> {
        let f = self.config.feature_channels;
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        let mut current_in = in_channels;
        for block in 0..self.config.conv_blocks {
            layers.push(Box::new(Conv2d::new(
                current_in,
                f,
                3,
                self.config.seed.wrapping_add(block as u64 * 3 + 1),
            )?));
            layers.push(Box::new(BatchNorm2d::new(f)?));
            layers.push(Box::new(Relu::new()));
            current_in = f;
        }
        layers.push(Box::new(Conv2d::new(
            current_in,
            f,
            1,
            self.config.seed.wrapping_add(1000),
        )?));
        layers.push(Box::new(BatchNorm2d::new(f)?));
        Ok(Sequential::new(layers))
    }

    /// Runs unsupervised per-image training and returns the final labels.
    ///
    /// # Errors
    ///
    /// Propagates network and imaging errors; these do not occur for images
    /// produced by the [`imaging`] crate and validated configurations.
    pub fn segment(&self, image: &DynamicImage) -> Result<KimOutcome> {
        let input = Self::image_to_tensor(image)?;
        let mut network = self.build_network(image.channels())?;
        let parameter_count = network.parameter_count();
        let mut optimizer = Sgd::new(self.config.learning_rate, self.config.momentum)?;

        let (width, height) = (image.width(), image.height());
        let mut losses = Vec::with_capacity(self.config.max_iterations);
        let mut labels: Vec<usize> = vec![0; width * height];
        let mut iterations_run = 0;

        for _ in 0..self.config.max_iterations {
            let response = network.forward(&input)?;
            labels = response.argmax_channels(0)?;
            let distinct = distinct_count(&labels);
            iterations_run += 1;

            let (ce_loss, ce_grad) = loss::softmax_cross_entropy(&response, &labels)?;
            let (cont_loss, cont_grad) = loss::spatial_continuity(&response)?;
            let mut grad = ce_grad;
            grad.add_scaled(&cont_grad, self.config.continuity_weight)?;
            losses.push(ce_loss + self.config.continuity_weight * cont_loss);

            network.zero_grad();
            network.backward(&grad)?;
            optimizer.step(network.parameters_mut())?;

            if distinct < self.config.min_labels {
                break;
            }
        }

        // Final assignment after the last update.
        let response = network.forward(&input)?;
        labels = response.argmax_channels(0)?;

        let mut label_map = LabelMap::new(width, height)?;
        for (i, &label) in labels.iter().enumerate() {
            label_map.set(i % width, i / width, label as u32)?;
        }
        Ok(KimOutcome {
            final_label_count: label_map.distinct_labels(),
            label_map,
            iterations_run,
            losses,
            parameter_count,
        })
    }
}

fn distinct_count(labels: &[usize]) -> usize {
    let mut seen = std::collections::BTreeSet::new();
    for &l in labels {
        seen.insert(l);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::{metrics, GrayImage};

    fn two_region_image(width: usize, height: usize) -> (DynamicImage, LabelMap) {
        let mut image = GrayImage::filled(width, height, 30).unwrap();
        let mut truth = LabelMap::new(width, height).unwrap();
        for y in 0..height {
            for x in width / 2..width {
                image.set(x, y, 220).unwrap();
                truth.set(x, y, 1).unwrap();
            }
        }
        (DynamicImage::Gray(image), truth)
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let mut config = KimConfig::tiny();
        config.feature_channels = 0;
        assert!(KimSegmenter::new(config).is_err());
    }

    #[test]
    fn tensor_conversion_normalises_and_preserves_layout() {
        let mut image = GrayImage::new(3, 2).unwrap();
        image.set(2, 1, 255).unwrap();
        let tensor = KimSegmenter::image_to_tensor(&DynamicImage::Gray(image)).unwrap();
        assert_eq!(tensor.shape(), [1, 1, 2, 3]);
        assert_eq!(tensor.get(0, 0, 1, 2).unwrap(), 1.0);
        assert_eq!(tensor.get(0, 0, 0, 0).unwrap(), 0.0);
    }

    #[test]
    fn segmentation_separates_high_contrast_regions() {
        let (image, truth) = two_region_image(16, 12);
        let outcome = KimSegmenter::new(KimConfig::tiny())
            .unwrap()
            .segment(&image)
            .unwrap();
        assert_eq!(outcome.label_map.width(), 16);
        assert_eq!(outcome.label_map.height(), 12);
        assert!(outcome.iterations_run >= 1);
        assert_eq!(outcome.losses.len(), outcome.iterations_run);
        let iou = metrics::matched_binary_iou(&outcome.label_map, &truth).unwrap();
        assert!(iou > 0.6, "IoU {iou}");
    }

    #[test]
    fn training_loss_trends_downwards() {
        let (image, _) = two_region_image(16, 16);
        let mut config = KimConfig::tiny();
        config.max_iterations = 15;
        // Disable the early-stop so we observe the full loss curve.
        config.min_labels = 2;
        let outcome = KimSegmenter::new(config).unwrap().segment(&image).unwrap();
        let first = outcome.losses.first().copied().unwrap();
        let last = outcome.losses.last().copied().unwrap();
        assert!(last <= first, "losses {first} -> {last}");
    }

    #[test]
    fn early_stop_respects_min_labels() {
        let (image, _) = two_region_image(12, 12);
        let mut config = KimConfig::tiny();
        // One more than the number of feature channels: the distinct label
        // count can never reach it, so training stops after one iteration
        // regardless of the random initialisation.
        config.min_labels = config.feature_channels + 1;
        let outcome = KimSegmenter::new(config).unwrap().segment(&image).unwrap();
        assert_eq!(outcome.iterations_run, 1);
    }

    #[test]
    fn rgb_images_are_supported() {
        let (gray, _) = two_region_image(10, 10);
        let rgb = DynamicImage::Rgb(gray.to_rgb());
        let outcome = KimSegmenter::new(KimConfig::tiny())
            .unwrap()
            .segment(&rgb)
            .unwrap();
        assert_eq!(outcome.label_map.pixel_count(), 100);
        assert!(outcome.parameter_count > 0);
    }

    #[test]
    fn same_seed_gives_identical_segmentations() {
        let (image, _) = two_region_image(12, 8);
        let a = KimSegmenter::new(KimConfig::tiny())
            .unwrap()
            .segment(&image)
            .unwrap();
        let b = KimSegmenter::new(KimConfig::tiny())
            .unwrap()
            .segment(&image)
            .unwrap();
        assert_eq!(a.label_map, b.label_map);
        let c = KimSegmenter::new(KimConfig::tiny().with_seed(7))
            .unwrap()
            .segment(&image)
            .unwrap();
        // A different seed is allowed to give a different clustering; we only
        // check that it still produces a full-size map.
        assert_eq!(c.label_map.pixel_count(), 96);
    }
}
