use std::error::Error;
use std::fmt;

/// Errors produced by the CNN baseline.
#[derive(Debug)]
#[non_exhaustive]
pub enum BaselineError {
    /// A configuration value is outside its valid domain.
    InvalidConfig {
        /// Human readable description.
        message: String,
    },
    /// An underlying neural-network operation failed.
    Network(neuralnet::NnError),
    /// An underlying imaging operation failed.
    Imaging(imaging::ImagingError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidConfig { message } => write!(f, "invalid config: {message}"),
            BaselineError::Network(err) => write!(f, "network error: {err}"),
            BaselineError::Imaging(err) => write!(f, "imaging error: {err}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Network(err) => Some(err),
            BaselineError::Imaging(err) => Some(err),
            BaselineError::InvalidConfig { .. } => None,
        }
    }
}

impl From<neuralnet::NnError> for BaselineError {
    fn from(err: neuralnet::NnError) -> Self {
        BaselineError::Network(err)
    }
}

impl From<imaging::ImagingError> for BaselineError {
    fn from(err: imaging::ImagingError) -> Self {
        BaselineError::Imaging(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = BaselineError::InvalidConfig {
            message: "zero channels".to_string(),
        };
        assert!(e.to_string().contains("zero channels"));
        assert!(e.source().is_none());
        let e = BaselineError::from(neuralnet::NnError::EmptyShape);
        assert!(e.source().is_some());
        let e = BaselineError::from(imaging::ImagingError::EmptyImage);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<BaselineError>();
    }
}
