use crate::{BaselineError, Result};

/// Configuration of the Kim et al. unsupervised CNN segmenter.
///
/// [`KimConfig::reference`] reproduces the defaults of the original paper;
/// [`KimConfig::tiny`] is a scaled-down variant used by tests and by
/// experiment harnesses that need many runs within a small time budget.
///
/// # Example
///
/// ```rust
/// let config = cnn_baseline::KimConfig::reference();
/// assert_eq!(config.feature_channels, 100);
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KimConfig {
    /// Number of response channels (upper bound on the number of clusters).
    pub feature_channels: usize,
    /// Number of 3×3 convolution blocks before the 1×1 classifier.
    pub conv_blocks: usize,
    /// Maximum number of self-training iterations per image.
    pub max_iterations: usize,
    /// Training stops early once fewer than this many distinct labels remain.
    pub min_labels: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight of the spatial-continuity loss relative to the
    /// feature-similarity (cross-entropy) loss.
    pub continuity_weight: f32,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl KimConfig {
    /// Defaults matching the reference implementation of Kim et al.
    /// (100 channels, 2 convolution blocks, up to 1000 iterations, minimum 3
    /// labels, SGD lr 0.1 / momentum 0.9, continuity weight 1).
    pub fn reference() -> Self {
        Self {
            feature_channels: 100,
            conv_blocks: 2,
            max_iterations: 1000,
            min_labels: 3,
            learning_rate: 0.1,
            momentum: 0.9,
            continuity_weight: 1.0,
            seed: 0,
        }
    }

    /// A scaled-down configuration (16 channels, 2 blocks, 20 iterations)
    /// that keeps the same training dynamics but runs in milliseconds on
    /// small images. Used by unit tests and quick examples.
    pub fn tiny() -> Self {
        Self {
            feature_channels: 16,
            conv_blocks: 2,
            max_iterations: 20,
            min_labels: 3,
            learning_rate: 0.1,
            momentum: 0.9,
            continuity_weight: 1.0,
            seed: 0,
        }
    }

    /// A mid-sized configuration used by the Table I harness: large enough
    /// to behave like the reference method on synthetic nuclei images,
    /// small enough to run dozens of per-image trainings in a benchmark.
    pub fn evaluation() -> Self {
        Self {
            feature_channels: 48,
            conv_blocks: 2,
            max_iterations: 60,
            min_labels: 3,
            learning_rate: 0.1,
            momentum: 0.9,
            continuity_weight: 1.0,
            seed: 0,
        }
    }

    /// Returns a copy with a different seed (used to average over runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.feature_channels < 2 {
            return Err(BaselineError::InvalidConfig {
                message: "feature_channels must be at least 2".to_string(),
            });
        }
        if self.conv_blocks == 0 {
            return Err(BaselineError::InvalidConfig {
                message: "at least one convolution block is required".to_string(),
            });
        }
        if self.max_iterations == 0 {
            return Err(BaselineError::InvalidConfig {
                message: "max_iterations must be at least 1".to_string(),
            });
        }
        if self.min_labels < 2 {
            return Err(BaselineError::InvalidConfig {
                message: "min_labels must be at least 2".to_string(),
            });
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                message: format!("learning_rate must be positive, got {}", self.learning_rate),
            });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(BaselineError::InvalidConfig {
                message: format!("momentum must be in [0, 1), got {}", self.momentum),
            });
        }
        if !self.continuity_weight.is_finite() || self.continuity_weight < 0.0 {
            return Err(BaselineError::InvalidConfig {
                message: format!(
                    "continuity_weight must be non-negative, got {}",
                    self.continuity_weight
                ),
            });
        }
        Ok(())
    }
}

impl Default for KimConfig {
    fn default() -> Self {
        Self::reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_match_reference_defaults() {
        let reference = KimConfig::reference();
        assert_eq!(reference.feature_channels, 100);
        assert_eq!(reference.max_iterations, 1000);
        assert_eq!(reference.min_labels, 3);
        assert!((reference.learning_rate - 0.1).abs() < 1e-9);
        reference.validate().unwrap();
        KimConfig::tiny().validate().unwrap();
        KimConfig::evaluation().validate().unwrap();
        assert_eq!(KimConfig::default(), KimConfig::reference());
    }

    #[test]
    fn with_seed_only_changes_the_seed() {
        let a = KimConfig::tiny();
        let b = a.clone().with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.feature_channels, b.feature_channels);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = KimConfig::tiny();
        c.feature_channels = 1;
        assert!(c.validate().is_err());

        let mut c = KimConfig::tiny();
        c.conv_blocks = 0;
        assert!(c.validate().is_err());

        let mut c = KimConfig::tiny();
        c.max_iterations = 0;
        assert!(c.validate().is_err());

        let mut c = KimConfig::tiny();
        c.min_labels = 1;
        assert!(c.validate().is_err());

        let mut c = KimConfig::tiny();
        c.learning_rate = 0.0;
        assert!(c.validate().is_err());

        let mut c = KimConfig::tiny();
        c.momentum = 1.5;
        assert!(c.validate().is_err());

        let mut c = KimConfig::tiny();
        c.continuity_weight = -1.0;
        assert!(c.validate().is_err());
    }
}
