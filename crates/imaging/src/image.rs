use crate::{ImagingError, Result};

/// An 8-bit single-channel (grayscale) image stored row-major.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), imaging::ImagingError> {
/// use imaging::GrayImage;
/// let mut img = GrayImage::new(4, 3)?;
/// img.set(1, 2, 200)?;
/// assert_eq!(img.get(1, 2)?, 200);
/// assert_eq!(img.pixel_count(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image of the given size.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self> {
        Self::filled(width, height, 0)
    }

    /// Creates an image where every pixel is `value`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        Ok(Self {
            width,
            height,
            data: vec![value; width * height],
        })
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] for zero dimensions and
    /// [`ImagingError::BufferSizeMismatch`] if `data.len() != width * height`.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        if data.len() != width * height {
            return Err(ImagingError::BufferSizeMismatch {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels (`width * height`).
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Borrow of the underlying row-major buffer.
    pub fn as_raw(&self) -> &[u8] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    pub fn as_raw_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the image and returns the underlying buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    fn check_bounds(&self, x: usize, y: usize) -> Result<()> {
        if x >= self.width || y >= self.height {
            return Err(ImagingError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(())
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside the
    /// image.
    pub fn get(&self, x: usize, y: usize) -> Result<u8> {
        self.check_bounds(x, y)?;
        Ok(self.data[y * self.width + x])
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside the
    /// image.
    pub fn set(&mut self, x: usize, y: usize, value: u8) -> Result<()> {
        self.check_bounds(x, y)?;
        self.data[y * self.width + x] = value;
        Ok(())
    }

    /// Returns the pixel at `(x, y)` clamped to the image borders (useful for
    /// convolution without explicit padding).
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Iterates over `(x, y, value)` for every pixel in row-major order.
    pub fn iter_pixels(&self) -> impl Iterator<Item = (usize, usize, u8)> + '_ {
        let width = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i % width, i / width, v))
    }

    /// Minimum and maximum pixel value.
    pub fn min_max(&self) -> (u8, u8) {
        let mut min = u8::MAX;
        let mut max = u8::MIN;
        for &v in &self.data {
            min = min.min(v);
            max = max.max(v);
        }
        (min, max)
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum::<f64>() / self.pixel_count() as f64
    }

    /// Converts to a three-channel RGB image by replicating the gray channel.
    pub fn to_rgb(&self) -> RgbImage {
        let mut data = Vec::with_capacity(self.data.len() * 3);
        for &v in &self.data {
            data.extend_from_slice(&[v, v, v]);
        }
        RgbImage::from_raw(self.width, self.height, data)
            .expect("buffer size is width * height * 3 by construction")
    }
}

/// An 8-bit three-channel (RGB) image stored row-major, interleaved.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), imaging::ImagingError> {
/// use imaging::RgbImage;
/// let mut img = RgbImage::new(2, 2)?;
/// img.set(0, 1, [255, 10, 0])?;
/// assert_eq!(img.get(0, 1)?, [255, 10, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl RgbImage {
    /// Creates a black RGB image.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        Ok(Self {
            width,
            height,
            data: vec![0; width * height * 3],
        })
    }

    /// Wraps an existing interleaved RGB buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] for zero dimensions and
    /// [`ImagingError::BufferSizeMismatch`] if
    /// `data.len() != width * height * 3`.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        if data.len() != width * height * 3 {
            return Err(ImagingError::BufferSizeMismatch {
                expected: width * height * 3,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels (`width * height`).
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Borrow of the underlying interleaved RGB buffer.
    pub fn as_raw(&self) -> &[u8] {
        &self.data
    }

    /// Mutable borrow of the underlying interleaved RGB buffer.
    pub fn as_raw_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    fn check_bounds(&self, x: usize, y: usize) -> Result<()> {
        if x >= self.width || y >= self.height {
            return Err(ImagingError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(())
    }

    /// Returns the `[r, g, b]` pixel at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside the
    /// image.
    pub fn get(&self, x: usize, y: usize) -> Result<[u8; 3]> {
        self.check_bounds(x, y)?;
        let i = (y * self.width + x) * 3;
        Ok([self.data[i], self.data[i + 1], self.data[i + 2]])
    }

    /// Sets the `[r, g, b]` pixel at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside the
    /// image.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) -> Result<()> {
        self.check_bounds(x, y)?;
        let i = (y * self.width + x) * 3;
        self.data[i] = rgb[0];
        self.data[i + 1] = rgb[1];
        self.data[i + 2] = rgb[2];
        Ok(())
    }

    /// Iterates over `(x, y, [r, g, b])` for every pixel in row-major order.
    pub fn iter_pixels(&self) -> impl Iterator<Item = (usize, usize, [u8; 3])> + '_ {
        let width = self.width;
        (0..self.pixel_count()).map(move |i| {
            let x = i % width;
            let y = i / width;
            let j = i * 3;
            (x, y, [self.data[j], self.data[j + 1], self.data[j + 2]])
        })
    }

    /// Converts to grayscale with the ITU-R BT.601 luma weights.
    pub fn to_gray(&self) -> GrayImage {
        crate::colorspace::rgb_to_gray(self)
    }
}

/// Either a grayscale or an RGB image.
///
/// The SegHDC pipeline accepts both (the BBBC005 evaluation image is
/// single-channel, the DSB2018 one has three channels); `DynamicImage` lets
/// callers pass either without committing to a channel count at the type
/// level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicImage {
    /// A single-channel image.
    Gray(GrayImage),
    /// A three-channel image.
    Rgb(RgbImage),
}

impl DynamicImage {
    /// Image width in pixels.
    pub fn width(&self) -> usize {
        match self {
            DynamicImage::Gray(img) => img.width(),
            DynamicImage::Rgb(img) => img.width(),
        }
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        match self {
            DynamicImage::Gray(img) => img.height(),
            DynamicImage::Rgb(img) => img.height(),
        }
    }

    /// Number of colour channels (1 or 3).
    pub fn channels(&self) -> usize {
        match self {
            DynamicImage::Gray(_) => 1,
            DynamicImage::Rgb(_) => 3,
        }
    }

    /// Number of pixels (`width * height`).
    pub fn pixel_count(&self) -> usize {
        self.width() * self.height()
    }

    /// Returns the channel values of the pixel at `(x, y)` as a fixed-size
    /// array padded with the first channel (`[v, v, v]` for gray images).
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside the
    /// image.
    pub fn channels_at(&self, x: usize, y: usize) -> Result<[u8; 3]> {
        match self {
            DynamicImage::Gray(img) => {
                let v = img.get(x, y)?;
                Ok([v, v, v])
            }
            DynamicImage::Rgb(img) => img.get(x, y),
        }
    }

    /// Scalar intensity of the pixel at `(x, y)` (the gray value, or the
    /// luma of an RGB pixel). Used by the clusterer's max-colour-difference
    /// centroid initialisation.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside the
    /// image.
    pub fn intensity_at(&self, x: usize, y: usize) -> Result<u8> {
        match self {
            DynamicImage::Gray(img) => img.get(x, y),
            DynamicImage::Rgb(img) => {
                let [r, g, b] = img.get(x, y)?;
                Ok(crate::colorspace::luma(r, g, b))
            }
        }
    }

    /// Converts to grayscale (identity for gray images).
    pub fn to_gray(&self) -> GrayImage {
        match self {
            DynamicImage::Gray(img) => img.clone(),
            DynamicImage::Rgb(img) => img.to_gray(),
        }
    }

    /// Converts to RGB (channel replication for gray images).
    pub fn to_rgb(&self) -> RgbImage {
        match self {
            DynamicImage::Gray(img) => img.to_rgb(),
            DynamicImage::Rgb(img) => img.clone(),
        }
    }
}

impl From<GrayImage> for DynamicImage {
    fn from(img: GrayImage) -> Self {
        DynamicImage::Gray(img)
    }
}

impl From<RgbImage> for DynamicImage {
    fn from(img: RgbImage) -> Self {
        DynamicImage::Rgb(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_image_construction_and_access() {
        let mut img = GrayImage::new(3, 2).unwrap();
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.pixel_count(), 6);
        img.set(2, 1, 77).unwrap();
        assert_eq!(img.get(2, 1).unwrap(), 77);
        assert_eq!(img.as_raw()[3 + 2], 77);
    }

    #[test]
    fn gray_image_rejects_bad_construction() {
        assert!(matches!(
            GrayImage::new(0, 5),
            Err(ImagingError::EmptyImage)
        ));
        assert!(matches!(
            GrayImage::new(5, 0),
            Err(ImagingError::EmptyImage)
        ));
        assert!(matches!(
            GrayImage::from_raw(2, 2, vec![0; 5]),
            Err(ImagingError::BufferSizeMismatch {
                expected: 4,
                actual: 5
            })
        ));
    }

    #[test]
    fn gray_image_out_of_bounds_access_errors() {
        let mut img = GrayImage::new(2, 2).unwrap();
        assert!(img.get(2, 0).is_err());
        assert!(img.get(0, 2).is_err());
        assert!(img.set(5, 5, 1).is_err());
    }

    #[test]
    fn gray_image_clamped_access_never_fails() {
        let img = GrayImage::from_raw(2, 2, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(img.get_clamped(-5, -5), 1);
        assert_eq!(img.get_clamped(10, 10), 4);
        assert_eq!(img.get_clamped(1, 0), 2);
    }

    #[test]
    fn gray_image_statistics() {
        let img = GrayImage::from_raw(2, 2, vec![10, 20, 30, 40]).unwrap();
        assert_eq!(img.min_max(), (10, 40));
        assert!((img.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn gray_to_rgb_replicates_channels() {
        let img = GrayImage::from_raw(2, 1, vec![5, 9]).unwrap();
        let rgb = img.to_rgb();
        assert_eq!(rgb.get(0, 0).unwrap(), [5, 5, 5]);
        assert_eq!(rgb.get(1, 0).unwrap(), [9, 9, 9]);
    }

    #[test]
    fn rgb_image_construction_and_access() {
        let mut img = RgbImage::new(2, 2).unwrap();
        img.set(1, 1, [9, 8, 7]).unwrap();
        assert_eq!(img.get(1, 1).unwrap(), [9, 8, 7]);
        assert!(img.get(2, 0).is_err());
        assert!(RgbImage::from_raw(2, 2, vec![0; 11]).is_err());
        assert!(matches!(RgbImage::new(0, 1), Err(ImagingError::EmptyImage)));
    }

    #[test]
    fn iter_pixels_visits_every_pixel_once_in_order() {
        let img = GrayImage::from_raw(3, 2, vec![0, 1, 2, 3, 4, 5]).unwrap();
        let pixels: Vec<(usize, usize, u8)> = img.iter_pixels().collect();
        assert_eq!(pixels.len(), 6);
        assert_eq!(pixels[0], (0, 0, 0));
        assert_eq!(pixels[4], (1, 1, 4));
        let rgb = img.to_rgb();
        assert_eq!(rgb.iter_pixels().count(), 6);
    }

    #[test]
    fn dynamic_image_unifies_gray_and_rgb() {
        let gray = DynamicImage::from(GrayImage::from_raw(1, 1, vec![100]).unwrap());
        assert_eq!(gray.channels(), 1);
        assert_eq!(gray.channels_at(0, 0).unwrap(), [100, 100, 100]);
        assert_eq!(gray.intensity_at(0, 0).unwrap(), 100);

        let mut rgb_img = RgbImage::new(1, 1).unwrap();
        rgb_img.set(0, 0, [255, 0, 0]).unwrap();
        let rgb = DynamicImage::from(rgb_img);
        assert_eq!(rgb.channels(), 3);
        assert_eq!(rgb.channels_at(0, 0).unwrap(), [255, 0, 0]);
        // Luma of pure red is 0.299 * 255 ≈ 76.
        let intensity = rgb.intensity_at(0, 0).unwrap();
        assert!((75..=77).contains(&intensity));
        assert_eq!(rgb.pixel_count(), 1);
    }

    #[test]
    fn dynamic_image_roundtrip_conversions() {
        let gray = GrayImage::from_raw(2, 1, vec![10, 250]).unwrap();
        let dynamic = DynamicImage::from(gray.clone());
        assert_eq!(dynamic.to_gray(), gray);
        assert_eq!(dynamic.to_rgb().get(1, 0).unwrap(), [250, 250, 250]);
    }
}
