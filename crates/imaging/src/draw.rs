//! Drawing primitives used by the synthetic dataset generators.
//!
//! All functions clip silently at the image border, so shapes may be placed
//! partially outside of the canvas (real microscopy nuclei are frequently cut
//! off at the image edge, and the generators reproduce that).

use crate::{GrayImage, LabelMap};

/// Fills an axis-aligned ellipse centred at `(cx, cy)` with radii
/// `(rx, ry)` into a grayscale image.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), imaging::ImagingError> {
/// use imaging::{draw, GrayImage};
/// let mut img = GrayImage::new(32, 32)?;
/// draw::fill_ellipse(&mut img, 16.0, 16.0, 5.0, 8.0, 255);
/// assert!(img.get(16, 16)? == 255);
/// assert!(img.get(0, 0)? == 0);
/// # Ok(())
/// # }
/// ```
pub fn fill_ellipse(image: &mut GrayImage, cx: f64, cy: f64, rx: f64, ry: f64, value: u8) {
    let (width, height) = (image.width(), image.height());
    let x_min = (cx - rx).floor().max(0.0) as usize;
    let x_max = (cx + rx).ceil().min(width as f64 - 1.0) as usize;
    let y_min = (cy - ry).floor().max(0.0) as usize;
    let y_max = (cy + ry).ceil().min(height as f64 - 1.0) as usize;
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    for y in y_min..=y_max {
        for x in x_min..=x_max {
            let dx = (x as f64 - cx) / rx;
            let dy = (y as f64 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                image
                    .set(x, y, value)
                    .expect("loop bounds are clipped to the image");
            }
        }
    }
}

/// Fills a disc (circle) of radius `r` centred at `(cx, cy)`.
pub fn fill_disc(image: &mut GrayImage, cx: f64, cy: f64, r: f64, value: u8) {
    fill_ellipse(image, cx, cy, r, r, value);
}

/// Fills an axis-aligned ellipse into a label map with the given label.
pub fn fill_ellipse_label(map: &mut LabelMap, cx: f64, cy: f64, rx: f64, ry: f64, label: u32) {
    let (width, height) = (map.width(), map.height());
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let x_min = (cx - rx).floor().max(0.0) as usize;
    let x_max = (cx + rx).ceil().min(width as f64 - 1.0) as usize;
    let y_min = (cy - ry).floor().max(0.0) as usize;
    let y_max = (cy + ry).ceil().min(height as f64 - 1.0) as usize;
    for y in y_min..=y_max {
        for x in x_min..=x_max {
            let dx = (x as f64 - cx) / rx;
            let dy = (y as f64 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                map.set(x, y, label)
                    .expect("loop bounds are clipped to the map");
            }
        }
    }
}

/// Fills an axis-aligned rectangle (inclusive of `x0, y0`, exclusive of
/// `x1, y1`), clipped to the image.
pub fn fill_rect(image: &mut GrayImage, x0: usize, y0: usize, x1: usize, y1: usize, value: u8) {
    let x1 = x1.min(image.width());
    let y1 = y1.min(image.height());
    for y in y0..y1 {
        for x in x0..x1 {
            image.set(x, y, value).expect("clipped to image bounds");
        }
    }
}

/// Adds a linear intensity gradient across the image: the value at `(x, y)`
/// is increased by `strength * (a*x + b*y)` normalised to the image diagonal,
/// saturating at 255. This reproduces the uneven illumination typical of
/// microscopy backgrounds.
pub fn add_linear_gradient(image: &mut GrayImage, a: f64, b: f64, strength: f64) {
    let width = image.width();
    let height = image.height();
    let norm = (a.abs() * width as f64 + b.abs() * height as f64).max(1.0);
    for y in 0..height {
        for x in 0..width {
            let g = strength * (a * x as f64 + b * y as f64) / norm;
            let old = f64::from(image.get(x, y).expect("in bounds"));
            let new = (old + g).clamp(0.0, 255.0) as u8;
            image.set(x, y, new).expect("in bounds");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ellipse_fills_centre_and_leaves_corners() {
        let mut img = GrayImage::new(21, 21).unwrap();
        fill_ellipse(&mut img, 10.0, 10.0, 4.0, 6.0, 200);
        assert_eq!(img.get(10, 10).unwrap(), 200);
        assert_eq!(img.get(10, 15).unwrap(), 200); // within ry
        assert_eq!(img.get(15, 10).unwrap(), 0); // outside rx
        assert_eq!(img.get(0, 0).unwrap(), 0);
    }

    #[test]
    fn disc_is_symmetric() {
        let mut img = GrayImage::new(21, 21).unwrap();
        fill_disc(&mut img, 10.0, 10.0, 5.0, 255);
        for (dx, dy) in [(5i64, 0i64), (-5, 0), (0, 5), (0, -5)] {
            let x = (10 + dx) as usize;
            let y = (10 + dy) as usize;
            assert_eq!(img.get(x, y).unwrap(), 255, "({dx},{dy})");
        }
    }

    #[test]
    fn shapes_clip_at_borders_without_panicking() {
        let mut img = GrayImage::new(10, 10).unwrap();
        fill_disc(&mut img, 0.0, 0.0, 6.0, 100);
        fill_disc(&mut img, 9.0, 9.0, 6.0, 100);
        fill_ellipse(&mut img, -3.0, -3.0, 2.0, 2.0, 50);
        assert_eq!(img.get(0, 0).unwrap(), 100);
        assert_eq!(img.get(9, 9).unwrap(), 100);
    }

    #[test]
    fn degenerate_radii_draw_nothing() {
        let mut img = GrayImage::new(10, 10).unwrap();
        fill_ellipse(&mut img, 5.0, 5.0, 0.0, 3.0, 100);
        assert!(img.as_raw().iter().all(|&v| v == 0));
    }

    #[test]
    fn label_ellipse_writes_labels() {
        let mut map = LabelMap::new(16, 16).unwrap();
        fill_ellipse_label(&mut map, 8.0, 8.0, 3.0, 3.0, 7);
        assert_eq!(map.get(8, 8).unwrap(), 7);
        assert_eq!(map.get(0, 0).unwrap(), 0);
        assert!(map.foreground_pixels() > 20);
    }

    #[test]
    fn rect_fills_exact_area() {
        let mut img = GrayImage::new(8, 8).unwrap();
        fill_rect(&mut img, 1, 2, 4, 5, 9);
        let filled = img.as_raw().iter().filter(|&&v| v == 9).count();
        assert_eq!(filled, 3 * 3);
        assert_eq!(img.get(1, 2).unwrap(), 9);
        assert_eq!(img.get(4, 5).unwrap(), 0);
        // Clipping beyond the image is silent.
        fill_rect(&mut img, 6, 6, 20, 20, 3);
        assert_eq!(img.get(7, 7).unwrap(), 3);
    }

    #[test]
    fn gradient_is_monotonic_along_its_direction() {
        let mut img = GrayImage::new(32, 4).unwrap();
        add_linear_gradient(&mut img, 1.0, 0.0, 120.0);
        let left = img.get(0, 0).unwrap();
        let mid = img.get(16, 0).unwrap();
        let right = img.get(31, 0).unwrap();
        assert!(left <= mid && mid <= right);
        assert!(right > left);
    }

    #[test]
    fn gradient_saturates_instead_of_wrapping() {
        let mut img = GrayImage::filled(8, 8, 250).unwrap();
        add_linear_gradient(&mut img, 1.0, 1.0, 300.0);
        assert!(img.as_raw().iter().all(|&v| v >= 250));
    }
}
