use crate::{ImagingError, Result};

/// An axis-aligned pixel rectangle, used for tile interiors, halo-padded
/// tile regions and image-view crops.
///
/// Coordinates are in the coordinate system of whatever image (or view) the
/// rectangle was planned against; `x`/`y` is the top-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRect {
    /// Leftmost column of the rectangle.
    pub x: usize,
    /// Topmost row of the rectangle.
    pub y: usize,
    /// Width in pixels (always non-zero for rectangles produced by
    /// [`TileGrid`]).
    pub width: usize,
    /// Height in pixels (always non-zero for rectangles produced by
    /// [`TileGrid`]).
    pub height: usize,
}

impl TileRect {
    /// Number of pixels covered by the rectangle.
    pub fn area(&self) -> usize {
        self.width * self.height
    }

    /// One past the rightmost column.
    pub fn right(&self) -> usize {
        self.x + self.width
    }

    /// One past the bottom row.
    pub fn bottom(&self) -> usize {
        self.y + self.height
    }

    /// Whether the pixel `(x, y)` lies inside the rectangle.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x && x < self.right() && y >= self.y && y < self.bottom()
    }
}

/// One tile planned by a [`TileGrid`]: its grid position, the interior
/// rectangle it is responsible for, and the halo-padded rectangle it should
/// be processed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Column of the tile in the tile grid (0-based).
    pub grid_x: usize,
    /// Row of the tile in the tile grid (0-based).
    pub grid_y: usize,
    /// The pixels this tile *owns*: interiors of all tiles partition the
    /// image exactly (every pixel belongs to exactly one interior).
    pub interior: TileRect,
    /// The interior expanded by the halo on every side, clamped to the
    /// image borders. This is the region a streaming segmenter encodes and
    /// clusters, so that tile-boundary pixels see the same neighbourhood
    /// context as in a whole-image run.
    pub padded: TileRect,
}

/// Tile/halo geometry planner over an arbitrary `(height, width)` image.
///
/// The planner splits the image into a grid of `tile_width × tile_height`
/// interior rectangles (the last row/column absorb the remainder and may be
/// smaller) and pads each interior by `halo` pixels on every side, clamped
/// to the image borders. Interiors cover every pixel exactly once; padded
/// regions overlap by up to `2 × halo` pixels, which is what gives a
/// tile-stitching segmenter its cross-tile voting evidence.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), imaging::ImagingError> {
/// use imaging::TileGrid;
///
/// let grid = TileGrid::new(100, 60, 32, 32, 4)?;
/// assert_eq!((grid.tiles_x(), grid.tiles_y()), (4, 2));
/// let corner = grid.tile(0, 0)?;
/// assert_eq!(corner.interior.area(), 32 * 32);
/// // The top-left tile has no halo above or left of it (clamped), but
/// // extends 4 pixels into its right and bottom neighbours.
/// assert_eq!((corner.padded.width, corner.padded.height), (36, 36));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    width: usize,
    height: usize,
    tile_width: usize,
    tile_height: usize,
    halo: usize,
    tiles_x: usize,
    tiles_y: usize,
}

impl TileGrid {
    /// Plans a tile grid over a `width × height` image.
    ///
    /// `tile_width`/`tile_height` are clamped to the image dimensions, so a
    /// tile size at least as large as the image degenerates to a single
    /// tile covering everything.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] if the image is empty,
    /// [`ImagingError::InvalidParameter`] if a tile dimension is zero or if
    /// `halo` is at least as large as the (clamped) tile edge — a halo that
    /// swallows whole neighbouring tiles would make the overlap bookkeeping
    /// ambiguous, so it is rejected up front.
    pub fn new(
        width: usize,
        height: usize,
        tile_width: usize,
        tile_height: usize,
        halo: usize,
    ) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        if tile_width == 0 || tile_height == 0 {
            return Err(ImagingError::InvalidParameter {
                message: "tile dimensions must be non-zero".to_string(),
            });
        }
        let tile_width = tile_width.min(width);
        let tile_height = tile_height.min(height);
        if halo >= tile_width || halo >= tile_height {
            return Err(ImagingError::InvalidParameter {
                message: format!(
                    "halo {halo} must be smaller than the tile edges ({tile_width}x{tile_height})"
                ),
            });
        }
        Ok(Self {
            width,
            height,
            tile_width,
            tile_height,
            halo,
            tiles_x: width.div_ceil(tile_width),
            tiles_y: height.div_ceil(tile_height),
        })
    }

    /// Image width the grid was planned for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height the grid was planned for.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Interior tile width (the last column may be narrower).
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }

    /// Interior tile height (the last row may be shorter).
    pub fn tile_height(&self) -> usize {
        self.tile_height
    }

    /// Halo width in pixels.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Number of tile columns.
    pub fn tiles_x(&self) -> usize {
        self.tiles_x
    }

    /// Number of tile rows.
    pub fn tiles_y(&self) -> usize {
        self.tiles_y
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// The tile at grid position `(grid_x, grid_y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the grid position does not
    /// exist.
    pub fn tile(&self, grid_x: usize, grid_y: usize) -> Result<Tile> {
        if grid_x >= self.tiles_x || grid_y >= self.tiles_y {
            return Err(ImagingError::OutOfBounds {
                x: grid_x,
                y: grid_y,
                width: self.tiles_x,
                height: self.tiles_y,
            });
        }
        let x = grid_x * self.tile_width;
        let y = grid_y * self.tile_height;
        let interior = TileRect {
            x,
            y,
            width: self.tile_width.min(self.width - x),
            height: self.tile_height.min(self.height - y),
        };
        let px = x.saturating_sub(self.halo);
        let py = y.saturating_sub(self.halo);
        let padded = TileRect {
            x: px,
            y: py,
            width: (interior.right() + self.halo).min(self.width) - px,
            height: (interior.bottom() + self.halo).min(self.height) - py,
        };
        Ok(Tile {
            grid_x,
            grid_y,
            interior,
            padded,
        })
    }

    /// Iterates over every tile in row-major grid order.
    pub fn iter(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.tile_count()).map(move |index| {
            self.tile(index % self.tiles_x, index / self.tiles_x)
                .expect("index is within the grid by construction")
        })
    }

    /// The largest padded pixel count over all tiles — the row capacity a
    /// reusable per-tile buffer needs.
    pub fn max_padded_pixels(&self) -> usize {
        self.iter().map(|t| t.padded.area()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_degenerate_parameters() {
        assert!(matches!(
            TileGrid::new(0, 10, 4, 4, 0),
            Err(ImagingError::EmptyImage)
        ));
        assert!(matches!(
            TileGrid::new(10, 0, 4, 4, 0),
            Err(ImagingError::EmptyImage)
        ));
        assert!(TileGrid::new(10, 10, 0, 4, 0).is_err());
        assert!(TileGrid::new(10, 10, 4, 0, 0).is_err());
        // Halo at least as large as a tile edge is rejected.
        assert!(TileGrid::new(10, 10, 4, 4, 4).is_err());
        assert!(TileGrid::new(10, 10, 8, 3, 3).is_err());
        // ... also when the clamped tile edge is what shrinks below it.
        assert!(TileGrid::new(3, 10, 8, 8, 5).is_err());
        assert!(TileGrid::new(10, 10, 4, 4, 3).is_ok());
    }

    #[test]
    fn interiors_cover_every_pixel_exactly_once() {
        for (w, h, tw, th, halo) in [
            (17usize, 11usize, 5usize, 3usize, 2usize),
            (16, 16, 4, 4, 1),
            (7, 13, 13, 2, 1),
            (1, 9, 1, 4, 0),
            (9, 1, 2, 1, 0),
        ] {
            let grid = TileGrid::new(w, h, tw, th, halo).unwrap();
            let mut covered = vec![0u32; w * h];
            for tile in grid.iter() {
                for y in tile.interior.y..tile.interior.bottom() {
                    for x in tile.interior.x..tile.interior.right() {
                        covered[y * w + x] += 1;
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "({w},{h},{tw},{th},{halo}): interiors must partition the image"
            );
        }
    }

    #[test]
    fn halo_is_clamped_at_image_borders() {
        let grid = TileGrid::new(20, 20, 10, 10, 3).unwrap();
        let top_left = grid.tile(0, 0).unwrap();
        assert_eq!(
            top_left.padded,
            TileRect {
                x: 0,
                y: 0,
                width: 13,
                height: 13
            }
        );
        let bottom_right = grid.tile(1, 1).unwrap();
        assert_eq!(
            bottom_right.padded,
            TileRect {
                x: 7,
                y: 7,
                width: 13,
                height: 13
            }
        );
        // Interior tiles (none here) would get the full 2 * halo expansion;
        // every padded rect stays within the image.
        for tile in grid.iter() {
            assert!(tile.padded.right() <= 20);
            assert!(tile.padded.bottom() <= 20);
            assert!(tile.padded.x <= tile.interior.x);
            assert!(tile.padded.y <= tile.interior.y);
            assert!(tile.padded.right() >= tile.interior.right());
            assert!(tile.padded.bottom() >= tile.interior.bottom());
        }
    }

    #[test]
    fn interior_tiles_get_the_full_halo() {
        let grid = TileGrid::new(30, 30, 10, 10, 2).unwrap();
        let centre = grid.tile(1, 1).unwrap();
        assert_eq!(
            centre.interior,
            TileRect {
                x: 10,
                y: 10,
                width: 10,
                height: 10
            }
        );
        assert_eq!(
            centre.padded,
            TileRect {
                x: 8,
                y: 8,
                width: 14,
                height: 14
            }
        );
        assert_eq!(grid.max_padded_pixels(), 14 * 14);
    }

    #[test]
    fn tile_at_least_as_large_as_the_image_degenerates_to_one_tile() {
        let grid = TileGrid::new(12, 8, 100, 100, 6).unwrap();
        assert_eq!(grid.tile_count(), 1);
        let only = grid.tile(0, 0).unwrap();
        assert_eq!(
            only.interior,
            TileRect {
                x: 0,
                y: 0,
                width: 12,
                height: 8
            }
        );
        assert_eq!(only.padded, only.interior);
        assert_eq!(grid.max_padded_pixels(), 96);
    }

    #[test]
    fn one_by_n_strips_are_supported() {
        let grid = TileGrid::new(1, 10, 1, 3, 0).unwrap();
        assert_eq!((grid.tiles_x(), grid.tiles_y()), (1, 4));
        let last = grid.tile(0, 3).unwrap();
        assert_eq!(
            last.interior,
            TileRect {
                x: 0,
                y: 9,
                width: 1,
                height: 1
            }
        );

        let wide = TileGrid::new(10, 1, 4, 1, 0).unwrap();
        assert_eq!((wide.tiles_x(), wide.tiles_y()), (3, 1));
        assert_eq!(wide.tile(2, 0).unwrap().interior.width, 2);
    }

    #[test]
    fn remainder_tiles_absorb_the_edges() {
        let grid = TileGrid::new(10, 7, 4, 4, 1).unwrap();
        assert_eq!((grid.tiles_x(), grid.tiles_y()), (3, 2));
        let last = grid.tile(2, 1).unwrap();
        assert_eq!(
            last.interior,
            TileRect {
                x: 8,
                y: 4,
                width: 2,
                height: 3
            }
        );
        // Its padded rect reaches one pixel left/up and is clamped right/down.
        assert_eq!(
            last.padded,
            TileRect {
                x: 7,
                y: 3,
                width: 3,
                height: 4
            }
        );
    }

    #[test]
    fn out_of_range_grid_positions_error() {
        let grid = TileGrid::new(8, 8, 4, 4, 0).unwrap();
        assert!(grid.tile(2, 0).is_err());
        assert!(grid.tile(0, 2).is_err());
    }

    #[test]
    fn rect_accessors_behave() {
        let rect = TileRect {
            x: 2,
            y: 3,
            width: 4,
            height: 5,
        };
        assert_eq!(rect.area(), 20);
        assert_eq!(rect.right(), 6);
        assert_eq!(rect.bottom(), 8);
        assert!(rect.contains(2, 3));
        assert!(rect.contains(5, 7));
        assert!(!rect.contains(6, 3));
        assert!(!rect.contains(2, 8));
        assert!(!rect.contains(0, 0));
    }
}
