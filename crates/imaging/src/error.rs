use std::error::Error;
use std::fmt;

/// Errors produced by image construction, indexing, I/O and metrics.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImagingError {
    /// An image with zero width or height was requested.
    EmptyImage,
    /// The supplied pixel buffer does not match `width * height * channels`.
    BufferSizeMismatch {
        /// Number of elements expected.
        expected: usize,
        /// Number of elements provided.
        actual: usize,
    },
    /// A pixel coordinate fell outside of the image.
    OutOfBounds {
        /// Requested x coordinate.
        x: usize,
        /// Requested y coordinate.
        y: usize,
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
    },
    /// Two images/label maps that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left operand (width, height).
        left: (usize, usize),
        /// Shape of the right operand (width, height).
        right: (usize, usize),
    },
    /// A parameter is outside its valid domain.
    InvalidParameter {
        /// Human readable description.
        message: String,
    },
    /// A PNM file could not be parsed.
    ParsePnm {
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for ImagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImagingError::EmptyImage => write!(f, "image dimensions must be non-zero"),
            ImagingError::BufferSizeMismatch { expected, actual } => {
                write!(f, "pixel buffer has {actual} elements, expected {expected}")
            }
            ImagingError::OutOfBounds {
                x,
                y,
                width,
                height,
            } => write!(
                f,
                "pixel ({x}, {y}) out of bounds for {width}x{height} image"
            ),
            ImagingError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            ImagingError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            ImagingError::ParsePnm { message } => write!(f, "failed to parse pnm: {message}"),
            ImagingError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl Error for ImagingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImagingError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImagingError {
    fn from(err: std::io::Error) -> Self {
        ImagingError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_describe_the_problem() {
        assert!(ImagingError::EmptyImage.to_string().contains("non-zero"));
        let e = ImagingError::OutOfBounds {
            x: 5,
            y: 6,
            width: 3,
            height: 3,
        };
        assert!(e.to_string().contains("(5, 6)"));
        let e = ImagingError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e = ImagingError::from(io);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ImagingError>();
    }
}
