//! Binary morphology and connected-component labelling.

use crate::{LabelMap, Result};

/// Labels the 4-connected components of the foreground (non-zero labels) of
/// a map. The output assigns consecutive labels `1..=n` to components and `0`
/// to background.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), imaging::ImagingError> {
/// use imaging::{morphology, LabelMap};
/// // Two separate foreground pixels on a 3x1 strip.
/// let map = LabelMap::from_raw(3, 1, vec![1, 0, 1])?;
/// let labeled = morphology::connected_components(&map)?;
/// assert_eq!(labeled.distinct_labels(), 3); // background + 2 components
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// This function cannot currently fail but returns `Result` for uniformity
/// with the rest of the crate.
pub fn connected_components(map: &LabelMap) -> Result<LabelMap> {
    let width = map.width();
    let height = map.height();
    let mut out = LabelMap::new(width, height)?;
    let mut next_label = 0u32;
    let mut stack: Vec<(usize, usize)> = Vec::new();

    for start_y in 0..height {
        for start_x in 0..width {
            if map.get(start_x, start_y)? == 0 || out.get(start_x, start_y)? != 0 {
                continue;
            }
            next_label += 1;
            stack.push((start_x, start_y));
            out.set(start_x, start_y, next_label)?;
            while let Some((x, y)) = stack.pop() {
                let visit = |nx: usize,
                             ny: usize,
                             out: &mut LabelMap,
                             stack: &mut Vec<(usize, usize)>|
                 -> Result<()> {
                    if map.get(nx, ny)? != 0 && out.get(nx, ny)? == 0 {
                        out.set(nx, ny, next_label)?;
                        stack.push((nx, ny));
                    }
                    Ok(())
                };
                if x > 0 {
                    visit(x - 1, y, &mut out, &mut stack)?;
                }
                if x + 1 < width {
                    visit(x + 1, y, &mut out, &mut stack)?;
                }
                if y > 0 {
                    visit(x, y - 1, &mut out, &mut stack)?;
                }
                if y + 1 < height {
                    visit(x, y + 1, &mut out, &mut stack)?;
                }
            }
        }
    }
    Ok(out)
}

/// Counts the 4-connected foreground components of a map.
///
/// # Errors
///
/// Propagates errors from [`connected_components`].
pub fn count_components(map: &LabelMap) -> Result<usize> {
    let labeled = connected_components(map)?;
    Ok(labeled
        .label_histogram()
        .keys()
        .filter(|&&label| label != 0)
        .count())
}

/// Binary erosion with a 3×3 cross (4-neighbourhood) structuring element:
/// a pixel stays foreground only if all of its 4-neighbours (and itself) are
/// foreground. Border pixels treat out-of-image neighbours as background.
///
/// # Errors
///
/// This function cannot currently fail but returns `Result` for uniformity.
pub fn erode(map: &LabelMap) -> Result<LabelMap> {
    let width = map.width();
    let height = map.height();
    let mut out = LabelMap::new(width, height)?;
    for y in 0..height {
        for x in 0..width {
            let is_fg = |x: isize, y: isize| -> bool {
                if x < 0 || y < 0 || x >= width as isize || y >= height as isize {
                    return false;
                }
                map.get(x as usize, y as usize)
                    .map(|l| l != 0)
                    .unwrap_or(false)
            };
            let xi = x as isize;
            let yi = y as isize;
            let keep = is_fg(xi, yi)
                && is_fg(xi - 1, yi)
                && is_fg(xi + 1, yi)
                && is_fg(xi, yi - 1)
                && is_fg(xi, yi + 1);
            if keep {
                out.set(x, y, 1)?;
            }
        }
    }
    Ok(out)
}

/// Binary dilation with a 3×3 cross (4-neighbourhood) structuring element:
/// a pixel becomes foreground if it or any 4-neighbour is foreground.
///
/// # Errors
///
/// This function cannot currently fail but returns `Result` for uniformity.
pub fn dilate(map: &LabelMap) -> Result<LabelMap> {
    let width = map.width();
    let height = map.height();
    let mut out = LabelMap::new(width, height)?;
    for y in 0..height {
        for x in 0..width {
            let is_fg = |x: isize, y: isize| -> bool {
                if x < 0 || y < 0 || x >= width as isize || y >= height as isize {
                    return false;
                }
                map.get(x as usize, y as usize)
                    .map(|l| l != 0)
                    .unwrap_or(false)
            };
            let xi = x as isize;
            let yi = y as isize;
            let set = is_fg(xi, yi)
                || is_fg(xi - 1, yi)
                || is_fg(xi + 1, yi)
                || is_fg(xi, yi - 1)
                || is_fg(xi, yi + 1);
            if set {
                out.set(x, y, 1)?;
            }
        }
    }
    Ok(out)
}

/// Morphological opening (erosion followed by dilation); removes isolated
/// foreground specks smaller than the structuring element.
///
/// # Errors
///
/// Propagates errors from [`erode`] / [`dilate`].
pub fn open(map: &LabelMap) -> Result<LabelMap> {
    dilate(&erode(map)?)
}

/// Morphological closing (dilation followed by erosion); fills small holes.
///
/// # Errors
///
/// Propagates errors from [`erode`] / [`dilate`].
pub fn close(map: &LabelMap) -> Result<LabelMap> {
    erode(&dilate(map)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_from(rows: &[&[u32]]) -> LabelMap {
        let height = rows.len();
        let width = rows[0].len();
        let flat: Vec<u32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        LabelMap::from_raw(width, height, flat).unwrap()
    }

    #[test]
    fn single_blob_is_one_component() {
        let map = map_from(&[&[0, 1, 1, 0], &[0, 1, 1, 0], &[0, 0, 0, 0]]);
        assert_eq!(count_components(&map).unwrap(), 1);
    }

    #[test]
    fn diagonal_blobs_are_separate_under_4_connectivity() {
        let map = map_from(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]]);
        assert_eq!(count_components(&map).unwrap(), 3);
    }

    #[test]
    fn components_receive_consecutive_labels() {
        let map = map_from(&[&[1, 0, 2], &[0, 0, 2]]);
        let labeled = connected_components(&map).unwrap();
        let hist = labeled.label_histogram();
        assert_eq!(hist.len(), 3); // 0, 1, 2
        assert_eq!(hist[&1], 1);
        assert_eq!(hist[&2], 2);
    }

    #[test]
    fn empty_map_has_no_components() {
        let map = LabelMap::new(5, 5).unwrap();
        assert_eq!(count_components(&map).unwrap(), 0);
    }

    #[test]
    fn full_map_is_one_component() {
        let map = LabelMap::from_raw(4, 4, vec![3; 16]).unwrap();
        assert_eq!(count_components(&map).unwrap(), 1);
    }

    #[test]
    fn erosion_removes_single_pixels() {
        let map = map_from(&[&[0, 0, 0], &[0, 1, 0], &[0, 0, 0]]);
        let eroded = erode(&map).unwrap();
        assert_eq!(eroded.foreground_pixels(), 0);
    }

    #[test]
    fn dilation_grows_by_one_ring() {
        let map = map_from(&[&[0, 0, 0], &[0, 1, 0], &[0, 0, 0]]);
        let dilated = dilate(&map).unwrap();
        assert_eq!(dilated.foreground_pixels(), 5);
    }

    #[test]
    fn erosion_then_dilation_of_large_blob_is_nearly_identity() {
        let mut map = LabelMap::new(10, 10).unwrap();
        for y in 2..8 {
            for x in 2..8 {
                map.set(x, y, 1).unwrap();
            }
        }
        let opened = open(&map).unwrap();
        // A 6x6 square opened with a 3x3 cross keeps most of its area.
        assert!(opened.foreground_pixels() >= 24);
        assert!(opened.foreground_pixels() <= 36);
    }

    #[test]
    fn closing_fills_single_pixel_holes() {
        let mut map = LabelMap::new(7, 7).unwrap();
        for y in 1..6 {
            for x in 1..6 {
                map.set(x, y, 1).unwrap();
            }
        }
        map.set(3, 3, 0).unwrap(); // a hole
        let closed = close(&map).unwrap();
        assert_eq!(closed.get(3, 3).unwrap(), 1);
    }
}
