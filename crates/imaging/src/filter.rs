//! Image filtering: Gaussian blur and synthetic noise models.

use crate::{GrayImage, ImagingError, Result};
use rand::Rng;

/// Builds a normalised 1-D Gaussian kernel with standard deviation `sigma`.
/// The radius is `ceil(3 * sigma)`, which captures > 99% of the mass.
fn gaussian_kernel(sigma: f64) -> Vec<f64> {
    let radius = (3.0 * sigma).ceil().max(1.0) as isize;
    let mut kernel: Vec<f64> = (-radius..=radius)
        .map(|i| (-((i * i) as f64) / (2.0 * sigma * sigma)).exp())
        .collect();
    let sum: f64 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    kernel
}

/// Applies a separable Gaussian blur with standard deviation `sigma`.
///
/// Border pixels are handled by clamping (edge replication).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `sigma` is not finite and
/// strictly positive.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), imaging::ImagingError> {
/// use imaging::{filter, GrayImage};
/// let mut img = GrayImage::new(9, 9)?;
/// img.set(4, 4, 255)?;
/// let blurred = filter::gaussian_blur(&img, 1.0)?;
/// assert!(blurred.get(4, 4)? < 255);
/// assert!(blurred.get(3, 4)? > 0);
/// # Ok(())
/// # }
/// ```
pub fn gaussian_blur(image: &GrayImage, sigma: f64) -> Result<GrayImage> {
    if !sigma.is_finite() || sigma <= 0.0 {
        return Err(ImagingError::InvalidParameter {
            message: format!("gaussian sigma must be positive and finite, got {sigma}"),
        });
    }
    let kernel = gaussian_kernel(sigma);
    let radius = (kernel.len() / 2) as isize;
    let width = image.width();
    let height = image.height();

    // Horizontal pass.
    let mut horizontal = vec![0.0f64; width * height];
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (k, &w) in kernel.iter().enumerate() {
                let sx = x as isize + k as isize - radius;
                acc += w * f64::from(image.get_clamped(sx, y as isize));
            }
            horizontal[y * width + x] = acc;
        }
    }
    // Vertical pass.
    let mut out = vec![0u8; width * height];
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0;
            for (k, &w) in kernel.iter().enumerate() {
                let sy = (y as isize + k as isize - radius).clamp(0, height as isize - 1) as usize;
                acc += w * horizontal[sy * width + x];
            }
            out[y * width + x] = acc.round().clamp(0.0, 255.0) as u8;
        }
    }
    GrayImage::from_raw(width, height, out)
}

/// Adds zero-mean Gaussian noise with standard deviation `sigma` to every
/// pixel, saturating at the 8-bit range.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `sigma` is negative or not
/// finite.
pub fn add_gaussian_noise<R: Rng>(image: &mut GrayImage, sigma: f64, rng: &mut R) -> Result<()> {
    if !sigma.is_finite() || sigma < 0.0 {
        return Err(ImagingError::InvalidParameter {
            message: format!("noise sigma must be non-negative and finite, got {sigma}"),
        });
    }
    if sigma == 0.0 {
        return Ok(());
    }
    for v in image.as_raw_mut() {
        // Box-Muller transform for a standard normal sample.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let noisy = f64::from(*v) + sigma * n;
        *v = noisy.round().clamp(0.0, 255.0) as u8;
    }
    Ok(())
}

/// Replaces a fraction `amount` of pixels with pure black or white
/// (salt-and-pepper noise).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if `amount` is outside `[0, 1]`.
pub fn add_salt_pepper_noise<R: Rng>(
    image: &mut GrayImage,
    amount: f64,
    rng: &mut R,
) -> Result<()> {
    if !(0.0..=1.0).contains(&amount) {
        return Err(ImagingError::InvalidParameter {
            message: format!("salt-and-pepper amount must be in [0, 1], got {amount}"),
        });
    }
    for v in image.as_raw_mut() {
        if rng.gen::<f64>() < amount {
            *v = if rng.gen::<bool>() { 255 } else { 0 };
        }
    }
    Ok(())
}

/// Smooth pseudo-random "value noise" texture in `[0, 1]`, evaluated at
/// `(x, y)` with the given cell size and seed. Used for MoNuSeg-style tissue
/// texture in the synthetic generators.
///
/// The function is deterministic in `(x, y, cell, seed)`.
pub fn value_noise(x: f64, y: f64, cell: f64, seed: u64) -> f64 {
    fn hash(ix: i64, iy: i64, seed: u64) -> f64 {
        let mut h = seed ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= (iy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^= h >> 32;
        (h & 0xFFFF_FFFF) as f64 / f64::from(u32::MAX)
    }
    fn smooth(t: f64) -> f64 {
        t * t * (3.0 - 2.0 * t)
    }
    let cell = cell.max(1.0);
    let gx = x / cell;
    let gy = y / cell;
    let ix = gx.floor() as i64;
    let iy = gy.floor() as i64;
    let fx = smooth(gx - gx.floor());
    let fy = smooth(gy - gy.floor());
    let v00 = hash(ix, iy, seed);
    let v10 = hash(ix + 1, iy, seed);
    let v01 = hash(ix, iy + 1, seed);
    let v11 = hash(ix + 1, iy + 1, seed);
    let top = v00 + (v10 - v00) * fx;
    let bottom = v01 + (v11 - v01) * fx;
    top + (bottom - top) * fy
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn kernel_is_normalised_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f64 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = GrayImage::filled(16, 16, 120).unwrap();
        let blurred = gaussian_blur(&img, 2.0).unwrap();
        assert!(blurred.as_raw().iter().all(|&v| (119..=121).contains(&v)));
    }

    #[test]
    fn blur_spreads_an_impulse() {
        let mut img = GrayImage::new(15, 15).unwrap();
        img.set(7, 7, 255).unwrap();
        let blurred = gaussian_blur(&img, 1.0).unwrap();
        assert!(blurred.get(7, 7).unwrap() < 255);
        assert!(blurred.get(6, 7).unwrap() > 0);
        assert!(blurred.get(7, 6).unwrap() > 0);
        // Far corner stays black.
        assert_eq!(blurred.get(0, 0).unwrap(), 0);
    }

    #[test]
    fn blur_rejects_bad_sigma() {
        let img = GrayImage::new(4, 4).unwrap();
        assert!(gaussian_blur(&img, 0.0).is_err());
        assert!(gaussian_blur(&img, -1.0).is_err());
        assert!(gaussian_blur(&img, f64::NAN).is_err());
    }

    #[test]
    fn gaussian_noise_perturbs_roughly_by_sigma() {
        let mut img = GrayImage::filled(64, 64, 128).unwrap();
        add_gaussian_noise(&mut img, 10.0, &mut rng()).unwrap();
        let mean = img.mean();
        assert!((mean - 128.0).abs() < 3.0, "mean {mean}");
        let var: f64 = img
            .as_raw()
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / img.pixel_count() as f64;
        assert!((var.sqrt() - 10.0).abs() < 2.0, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_noise_is_identity() {
        let mut img = GrayImage::filled(8, 8, 42).unwrap();
        let before = img.clone();
        add_gaussian_noise(&mut img, 0.0, &mut rng()).unwrap();
        assert_eq!(img, before);
    }

    #[test]
    fn noise_rejects_invalid_parameters() {
        let mut img = GrayImage::new(4, 4).unwrap();
        assert!(add_gaussian_noise(&mut img, -1.0, &mut rng()).is_err());
        assert!(add_salt_pepper_noise(&mut img, 1.5, &mut rng()).is_err());
        assert!(add_salt_pepper_noise(&mut img, -0.1, &mut rng()).is_err());
    }

    #[test]
    fn salt_pepper_touches_roughly_the_requested_fraction() {
        let mut img = GrayImage::filled(100, 100, 128).unwrap();
        add_salt_pepper_noise(&mut img, 0.1, &mut rng()).unwrap();
        let touched = img.as_raw().iter().filter(|&&v| v != 128).count() as f64;
        let fraction = touched / 10_000.0;
        assert!((fraction - 0.1).abs() < 0.03, "fraction {fraction}");
    }

    #[test]
    fn value_noise_is_deterministic_bounded_and_varies() {
        let a = value_noise(10.3, 42.7, 16.0, 99);
        let b = value_noise(10.3, 42.7, 16.0, 99);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
        let c = value_noise(200.0, 300.0, 16.0, 99);
        let d = value_noise(10.3, 42.7, 16.0, 100);
        assert!((a - c).abs() > 1e-9 || (a - d).abs() > 1e-9);
    }

    #[test]
    fn value_noise_is_smooth_within_a_cell() {
        let a = value_noise(32.0, 32.0, 32.0, 1);
        let b = value_noise(32.5, 32.0, 32.0, 1);
        assert!((a - b).abs() < 0.2);
    }
}
