//! Image substrate for the SegHDC reproduction.
//!
//! The SegHDC paper evaluates on microscopy photographs loaded with the usual
//! Python imaging stack; this crate provides the equivalent building blocks
//! in pure Rust:
//!
//! * [`GrayImage`] / [`RgbImage`] / [`DynamicImage`] — 8-bit image buffers.
//! * [`ImageView`] — borrowed rectangular views for zero-copy sub-image
//!   addressing.
//! * [`TileGrid`] — tile + halo geometry planning for streaming (tiled)
//!   processing of images larger than memory.
//! * [`LabelMap`] — per-pixel integer label maps (segmentation masks).
//! * [`pnm`] — PGM/PPM reading and writing so masks and inputs can be
//!   inspected with standard tools.
//! * [`draw`] — primitives (ellipses, discs, gradients) used by the
//!   synthetic dataset generators.
//! * [`filter`] — Gaussian blur and noise injection.
//! * [`morphology`] — connected components, erosion and dilation.
//! * [`metrics`] — IoU, Dice and pixel accuracy, including the
//!   cluster-to-class matching needed to score *unsupervised* segmentations.
//! * [`resize`] — nearest-neighbour and bilinear resampling.
//! * [`colorspace`] — RGB ↔ grayscale conversions.
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), imaging::ImagingError> {
//! use imaging::{metrics, LabelMap};
//!
//! let mut prediction = LabelMap::new(4, 4)?;
//! let mut truth = LabelMap::new(4, 4)?;
//! for x in 0..2 {
//!     for y in 0..4 {
//!         prediction.set(x, y, 1)?;
//!         truth.set(x, y, 1)?;
//!     }
//! }
//! let iou = metrics::binary_iou(&prediction, &truth)?;
//! assert!((iou - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colorspace;
pub mod draw;
mod error;
pub mod filter;
mod image;
mod label_map;
pub mod metrics;
pub mod morphology;
pub mod pnm;
pub mod resize;
mod tile;
mod view;

pub use error::ImagingError;
pub use image::{DynamicImage, GrayImage, RgbImage};
pub use label_map::LabelMap;
pub use tile::{Tile, TileGrid, TileRect};
pub use view::ImageView;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ImagingError>;
