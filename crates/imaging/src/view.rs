use crate::{DynamicImage, GrayImage, ImagingError, Result, RgbImage, TileRect};

/// A borrowed rectangular view into a [`DynamicImage`].
///
/// A view re-addresses a sub-rectangle of an existing image without copying
/// any pixels: coordinates passed to the accessors are *view-local* and are
/// translated to the parent image internally. The streaming tiled segmenter
/// consumes views so that callers can segment a region of interest of a
/// scan that is itself too large to segment in one piece.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), imaging::ImagingError> {
/// use imaging::{DynamicImage, GrayImage, ImageView};
///
/// let mut img = GrayImage::new(8, 8)?;
/// img.set(5, 6, 200)?;
/// let image = DynamicImage::Gray(img);
/// let view = ImageView::crop(&image, 4, 4, 4, 4)?;
/// assert_eq!(view.width(), 4);
/// assert_eq!(view.intensity_at(1, 2)?, 200); // (5, 6) in image coordinates
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ImageView<'a> {
    image: &'a DynamicImage,
    origin_x: usize,
    origin_y: usize,
    width: usize,
    height: usize,
}

impl<'a> ImageView<'a> {
    /// A view covering the whole image.
    pub fn full(image: &'a DynamicImage) -> Self {
        Self {
            image,
            origin_x: 0,
            origin_y: 0,
            width: image.width(),
            height: image.height(),
        }
    }

    /// A view of the `width × height` rectangle whose top-left corner is at
    /// `(x, y)` in image coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] if either dimension is zero and
    /// [`ImagingError::OutOfBounds`] if the rectangle does not fit in the
    /// image.
    pub fn crop(
        image: &'a DynamicImage,
        x: usize,
        y: usize,
        width: usize,
        height: usize,
    ) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        if x + width > image.width() || y + height > image.height() {
            return Err(ImagingError::OutOfBounds {
                x: x + width - 1,
                y: y + height - 1,
                width: image.width(),
                height: image.height(),
            });
        }
        Ok(Self {
            image,
            origin_x: x,
            origin_y: y,
            width,
            height,
        })
    }

    /// The underlying image the view borrows from.
    pub fn image(&self) -> &'a DynamicImage {
        self.image
    }

    /// Leftmost image column covered by the view.
    pub fn origin_x(&self) -> usize {
        self.origin_x
    }

    /// Topmost image row covered by the view.
    pub fn origin_y(&self) -> usize {
        self.origin_y
    }

    /// View width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// View height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels in the view.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Number of colour channels of the underlying image (1 or 3).
    pub fn channels(&self) -> usize {
        self.image.channels()
    }

    fn check_bounds(&self, x: usize, y: usize) -> Result<()> {
        if x >= self.width || y >= self.height {
            return Err(ImagingError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(())
    }

    /// Channel values at view-local `(x, y)`, padded like
    /// [`DynamicImage::channels_at`].
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside
    /// the view.
    pub fn channels_at(&self, x: usize, y: usize) -> Result<[u8; 3]> {
        self.check_bounds(x, y)?;
        self.image.channels_at(self.origin_x + x, self.origin_y + y)
    }

    /// Scalar intensity at view-local `(x, y)` (see
    /// [`DynamicImage::intensity_at`]).
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside
    /// the view.
    pub fn intensity_at(&self, x: usize, y: usize) -> Result<u8> {
        self.check_bounds(x, y)?;
        self.image
            .intensity_at(self.origin_x + x, self.origin_y + y)
    }

    /// Copies the rectangle `rect` (in view coordinates) out of the view
    /// into an owned image of the same colour type.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if `rect` does not fit in the
    /// view.
    pub fn extract(&self, rect: &TileRect) -> Result<DynamicImage> {
        if rect.width == 0 || rect.height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        if rect.right() > self.width || rect.bottom() > self.height {
            return Err(ImagingError::OutOfBounds {
                x: rect.right().saturating_sub(1),
                y: rect.bottom().saturating_sub(1),
                width: self.width,
                height: self.height,
            });
        }
        match self.image {
            DynamicImage::Gray(_) => {
                let mut out = GrayImage::new(rect.width, rect.height)?;
                for y in 0..rect.height {
                    for x in 0..rect.width {
                        out.set(x, y, self.intensity_at(rect.x + x, rect.y + y)?)?;
                    }
                }
                Ok(DynamicImage::Gray(out))
            }
            DynamicImage::Rgb(_) => {
                let mut out = RgbImage::new(rect.width, rect.height)?;
                for y in 0..rect.height {
                    for x in 0..rect.width {
                        let px = self.channels_at(rect.x + x, rect.y + y)?;
                        out.set(x, y, px)?;
                    }
                }
                Ok(DynamicImage::Rgb(out))
            }
        }
    }

    /// Copies the whole view into an owned image.
    ///
    /// # Errors
    ///
    /// Propagates pixel access errors (which cannot occur for a validated
    /// view).
    pub fn to_image(&self) -> Result<DynamicImage> {
        self.extract(&TileRect {
            x: 0,
            y: 0,
            width: self.width,
            height: self.height,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient() -> DynamicImage {
        let mut img = GrayImage::new(6, 4).unwrap();
        for y in 0..4 {
            for x in 0..6 {
                img.set(x, y, (y * 6 + x) as u8).unwrap();
            }
        }
        DynamicImage::Gray(img)
    }

    #[test]
    fn full_view_matches_the_image() {
        let image = gradient();
        let view = ImageView::full(&image);
        assert_eq!((view.width(), view.height()), (6, 4));
        assert_eq!(view.channels(), 1);
        assert_eq!(view.pixel_count(), 24);
        assert_eq!((view.origin_x(), view.origin_y()), (0, 0));
        assert_eq!(view.intensity_at(5, 3).unwrap(), 23);
        assert_eq!(view.channels_at(1, 0).unwrap(), [1, 1, 1]);
        assert_eq!(view.to_image().unwrap(), image);
    }

    #[test]
    fn cropped_view_translates_coordinates() {
        let image = gradient();
        let view = ImageView::crop(&image, 2, 1, 3, 2).unwrap();
        assert_eq!(view.intensity_at(0, 0).unwrap(), 8); // image (2, 1)
        assert_eq!(view.intensity_at(2, 1).unwrap(), 16); // image (4, 2)
        assert!(view.intensity_at(3, 0).is_err());
        assert!(view.channels_at(0, 2).is_err());
    }

    #[test]
    fn crop_validation() {
        let image = gradient();
        assert!(ImageView::crop(&image, 0, 0, 0, 2).is_err());
        assert!(ImageView::crop(&image, 4, 0, 3, 1).is_err());
        assert!(ImageView::crop(&image, 0, 3, 1, 2).is_err());
        assert!(ImageView::crop(&image, 5, 3, 1, 1).is_ok());
    }

    #[test]
    fn extract_copies_the_rectangle() {
        let image = gradient();
        let view = ImageView::full(&image);
        let rect = TileRect {
            x: 1,
            y: 1,
            width: 2,
            height: 2,
        };
        let owned = view.extract(&rect).unwrap();
        assert_eq!(owned.width(), 2);
        assert_eq!(owned.intensity_at(0, 0).unwrap(), 7);
        assert_eq!(owned.intensity_at(1, 1).unwrap(), 14);
        assert!(view
            .extract(&TileRect {
                x: 5,
                y: 0,
                width: 2,
                height: 1
            })
            .is_err());
    }

    #[test]
    fn rgb_views_expose_channels() {
        let mut rgb = RgbImage::new(3, 3).unwrap();
        rgb.set(2, 2, [9, 8, 7]).unwrap();
        let image = DynamicImage::Rgb(rgb);
        let view = ImageView::crop(&image, 1, 1, 2, 2).unwrap();
        assert_eq!(view.channels(), 3);
        assert_eq!(view.channels_at(1, 1).unwrap(), [9, 8, 7]);
        let owned = view.to_image().unwrap();
        assert_eq!(owned.channels_at(1, 1).unwrap(), [9, 8, 7]);
    }
}
