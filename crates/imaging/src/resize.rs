//! Image resampling.
//!
//! The CNN baseline of Kim et al. is routinely run on down-scaled inputs to
//! fit edge memory budgets; these helpers provide the nearest-neighbour and
//! bilinear resampling needed for that and for building image pyramids in
//! the experiment harnesses.

use crate::{GrayImage, ImagingError, LabelMap, Result};

fn check_target(width: usize, height: usize) -> Result<()> {
    if width == 0 || height == 0 {
        return Err(ImagingError::InvalidParameter {
            message: "target dimensions must be non-zero".to_string(),
        });
    }
    Ok(())
}

/// Nearest-neighbour resampling of a grayscale image.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if either target dimension is
/// zero.
pub fn resize_nearest(image: &GrayImage, width: usize, height: usize) -> Result<GrayImage> {
    check_target(width, height)?;
    let mut out = GrayImage::new(width, height)?;
    for y in 0..height {
        for x in 0..width {
            let sx = x * image.width() / width;
            let sy = y * image.height() / height;
            out.set(x, y, image.get(sx, sy)?)?;
        }
    }
    Ok(out)
}

/// Nearest-neighbour resampling of a label map (labels must not be blended,
/// so nearest neighbour is the only valid choice).
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if either target dimension is
/// zero.
pub fn resize_labels_nearest(map: &LabelMap, width: usize, height: usize) -> Result<LabelMap> {
    check_target(width, height)?;
    let mut out = LabelMap::new(width, height)?;
    for y in 0..height {
        for x in 0..width {
            let sx = x * map.width() / width;
            let sy = y * map.height() / height;
            out.set(x, y, map.get(sx, sy)?)?;
        }
    }
    Ok(out)
}

/// Bilinear resampling of a grayscale image.
///
/// # Errors
///
/// Returns [`ImagingError::InvalidParameter`] if either target dimension is
/// zero.
pub fn resize_bilinear(image: &GrayImage, width: usize, height: usize) -> Result<GrayImage> {
    check_target(width, height)?;
    let mut out = GrayImage::new(width, height)?;
    let x_ratio = image.width() as f64 / width as f64;
    let y_ratio = image.height() as f64 / height as f64;
    for y in 0..height {
        for x in 0..width {
            let src_x = (x as f64 + 0.5) * x_ratio - 0.5;
            let src_y = (y as f64 + 0.5) * y_ratio - 0.5;
            let x0 = src_x.floor() as isize;
            let y0 = src_y.floor() as isize;
            let fx = src_x - x0 as f64;
            let fy = src_y - y0 as f64;
            let p00 = f64::from(image.get_clamped(x0, y0));
            let p10 = f64::from(image.get_clamped(x0 + 1, y0));
            let p01 = f64::from(image.get_clamped(x0, y0 + 1));
            let p11 = f64::from(image.get_clamped(x0 + 1, y0 + 1));
            let top = p00 + (p10 - p00) * fx;
            let bottom = p01 + (p11 - p01) * fx;
            let value = top + (bottom - top) * fy;
            out.set(x, y, value.round().clamp(0.0, 255.0) as u8)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_resize_is_lossless() {
        let img = GrayImage::from_raw(3, 2, vec![1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(resize_nearest(&img, 3, 2).unwrap(), img);
        assert_eq!(resize_bilinear(&img, 3, 2).unwrap(), img);
    }

    #[test]
    fn upscaling_nearest_replicates_pixels() {
        let img = GrayImage::from_raw(2, 1, vec![10, 200]).unwrap();
        let up = resize_nearest(&img, 4, 2).unwrap();
        assert_eq!(up.get(0, 0).unwrap(), 10);
        assert_eq!(up.get(1, 1).unwrap(), 10);
        assert_eq!(up.get(2, 0).unwrap(), 200);
        assert_eq!(up.get(3, 1).unwrap(), 200);
    }

    #[test]
    fn downscaling_preserves_constant_regions() {
        let img = GrayImage::filled(16, 16, 99).unwrap();
        let down_n = resize_nearest(&img, 4, 4).unwrap();
        let down_b = resize_bilinear(&img, 4, 4).unwrap();
        assert!(down_n.as_raw().iter().all(|&v| v == 99));
        assert!(down_b.as_raw().iter().all(|&v| v == 99));
    }

    #[test]
    fn bilinear_interpolates_between_values() {
        let img = GrayImage::from_raw(2, 1, vec![0, 200]).unwrap();
        let up = resize_bilinear(&img, 4, 1).unwrap();
        let values = up.as_raw();
        assert!(values.windows(2).all(|w| w[0] <= w[1]));
        assert!(values[1] > 0 && values[2] < 200);
    }

    #[test]
    fn zero_target_dimensions_are_rejected() {
        let img = GrayImage::new(4, 4).unwrap();
        assert!(resize_nearest(&img, 0, 4).is_err());
        assert!(resize_bilinear(&img, 4, 0).is_err());
        let map = LabelMap::new(4, 4).unwrap();
        assert!(resize_labels_nearest(&map, 0, 0).is_err());
    }

    #[test]
    fn label_resize_never_invents_new_labels() {
        let map = LabelMap::from_raw(2, 2, vec![0, 1, 2, 3]).unwrap();
        let resized = resize_labels_nearest(&map, 7, 5).unwrap();
        let hist = resized.label_histogram();
        for label in hist.keys() {
            assert!(*label <= 3);
        }
        assert_eq!(resized.width(), 7);
        assert_eq!(resized.height(), 5);
    }
}
