//! Colour space conversions.

use crate::{GrayImage, RgbImage};

/// ITU-R BT.601 luma of an RGB triple, rounded to the nearest integer.
///
/// # Example
///
/// ```rust
/// assert_eq!(imaging::colorspace::luma(255, 255, 255), 255);
/// assert_eq!(imaging::colorspace::luma(0, 0, 0), 0);
/// ```
pub fn luma(r: u8, g: u8, b: u8) -> u8 {
    let y = 0.299 * f64::from(r) + 0.587 * f64::from(g) + 0.114 * f64::from(b);
    y.round().clamp(0.0, 255.0) as u8
}

/// Converts an RGB image to grayscale using [`luma`].
pub fn rgb_to_gray(image: &RgbImage) -> GrayImage {
    let data: Vec<u8> = image
        .as_raw()
        .chunks_exact(3)
        .map(|px| luma(px[0], px[1], px[2]))
        .collect();
    GrayImage::from_raw(image.width(), image.height(), data)
        .expect("gray buffer has one value per rgb pixel")
}

/// Converts a grayscale image to RGB by channel replication.
pub fn gray_to_rgb(image: &GrayImage) -> RgbImage {
    image.to_rgb()
}

/// Linearly stretches the intensity range of a grayscale image so that the
/// darkest pixel becomes 0 and the brightest becomes 255 (contrast
/// normalisation). Constant images are returned unchanged.
pub fn stretch_contrast(image: &GrayImage) -> GrayImage {
    let (min, max) = image.min_max();
    if min == max {
        return image.clone();
    }
    let span = f64::from(max) - f64::from(min);
    let data = image
        .as_raw()
        .iter()
        .map(|&v| (((f64::from(v) - f64::from(min)) / span) * 255.0).round() as u8)
        .collect();
    GrayImage::from_raw(image.width(), image.height(), data)
        .expect("output buffer has the same size as the input")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_matches_reference_weights() {
        assert_eq!(luma(255, 0, 0), 76);
        assert_eq!(luma(0, 255, 0), 150);
        assert_eq!(luma(0, 0, 255), 29);
        assert_eq!(luma(128, 128, 128), 128);
    }

    #[test]
    fn rgb_gray_roundtrip_for_neutral_colors() {
        let mut rgb = RgbImage::new(2, 1).unwrap();
        rgb.set(0, 0, [40, 40, 40]).unwrap();
        rgb.set(1, 0, [200, 200, 200]).unwrap();
        let gray = rgb_to_gray(&rgb);
        assert_eq!(gray.get(0, 0).unwrap(), 40);
        assert_eq!(gray.get(1, 0).unwrap(), 200);
        let back = gray_to_rgb(&gray);
        assert_eq!(back.get(1, 0).unwrap(), [200, 200, 200]);
    }

    #[test]
    fn stretch_contrast_expands_to_full_range() {
        let img = GrayImage::from_raw(3, 1, vec![100, 150, 200]).unwrap();
        let stretched = stretch_contrast(&img);
        assert_eq!(stretched.get(0, 0).unwrap(), 0);
        assert_eq!(stretched.get(1, 0).unwrap(), 128);
        assert_eq!(stretched.get(2, 0).unwrap(), 255);
    }

    #[test]
    fn stretch_contrast_leaves_constant_images_alone() {
        let img = GrayImage::filled(2, 2, 99).unwrap();
        assert_eq!(stretch_contrast(&img), img);
    }
}
