//! Segmentation quality metrics.
//!
//! The SegHDC paper scores every method with Intersection-over-Union (IoU)
//! between the predicted mask and the ground truth. Because the methods are
//! *unsupervised*, the raw prediction uses arbitrary cluster identifiers;
//! before the score is computed each predicted cluster must be matched to a
//! ground-truth class. [`matched_binary_iou`] performs the standard
//! best-foreground matching used for two-class (foreground/background)
//! evaluation and [`matched_mean_iou`] generalises it to any number of
//! classes with a greedy overlap assignment.

use crate::{ImagingError, LabelMap, Result};
use std::collections::BTreeMap;

fn check_same_shape(a: &LabelMap, b: &LabelMap) -> Result<()> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(ImagingError::ShapeMismatch {
            left: (a.width(), a.height()),
            right: (b.width(), b.height()),
        });
    }
    Ok(())
}

/// Intersection-over-Union of the *foreground* (non-zero labels) of two
/// label maps, treating both as binary masks.
///
/// If both masks are empty the IoU is defined as 1 (perfect agreement).
///
/// # Errors
///
/// Returns [`ImagingError::ShapeMismatch`] if the maps differ in size.
pub fn binary_iou(prediction: &LabelMap, truth: &LabelMap) -> Result<f64> {
    check_same_shape(prediction, truth)?;
    let mut intersection = 0usize;
    let mut union = 0usize;
    for (p, t) in prediction.as_raw().iter().zip(truth.as_raw()) {
        let pf = *p != 0;
        let tf = *t != 0;
        if pf && tf {
            intersection += 1;
        }
        if pf || tf {
            union += 1;
        }
    }
    if union == 0 {
        return Ok(1.0);
    }
    Ok(intersection as f64 / union as f64)
}

/// Dice coefficient (F1 of pixels) of the foregrounds of two label maps.
///
/// If both masks are empty the Dice score is defined as 1.
///
/// # Errors
///
/// Returns [`ImagingError::ShapeMismatch`] if the maps differ in size.
pub fn dice(prediction: &LabelMap, truth: &LabelMap) -> Result<f64> {
    check_same_shape(prediction, truth)?;
    let mut intersection = 0usize;
    let mut pred_fg = 0usize;
    let mut truth_fg = 0usize;
    for (p, t) in prediction.as_raw().iter().zip(truth.as_raw()) {
        let pf = *p != 0;
        let tf = *t != 0;
        if pf {
            pred_fg += 1;
        }
        if tf {
            truth_fg += 1;
        }
        if pf && tf {
            intersection += 1;
        }
    }
    if pred_fg + truth_fg == 0 {
        return Ok(1.0);
    }
    Ok(2.0 * intersection as f64 / (pred_fg + truth_fg) as f64)
}

/// Fraction of pixels whose binary (foreground/background) assignment agrees.
///
/// # Errors
///
/// Returns [`ImagingError::ShapeMismatch`] if the maps differ in size.
pub fn pixel_accuracy(prediction: &LabelMap, truth: &LabelMap) -> Result<f64> {
    check_same_shape(prediction, truth)?;
    let agree = prediction
        .as_raw()
        .iter()
        .zip(truth.as_raw())
        .filter(|(p, t)| (**p != 0) == (**t != 0))
        .count();
    Ok(agree as f64 / prediction.pixel_count() as f64)
}

/// IoU of an **unsupervised** prediction against a binary ground truth.
///
/// Every predicted cluster id is assigned to either *foreground* or
/// *background*, choosing for each cluster the class with which it overlaps
/// most; the IoU of the induced binary mask is returned. This is how
/// two-cluster SegHDC outputs (and the CNN baseline's arbitrary cluster ids)
/// are scored against nuclei masks.
///
/// # Errors
///
/// Returns [`ImagingError::ShapeMismatch`] if the maps differ in size.
pub fn matched_binary_iou(prediction: &LabelMap, truth: &LabelMap) -> Result<f64> {
    check_same_shape(prediction, truth)?;
    // For each predicted cluster count overlap with foreground / background.
    let mut overlap: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
    for (p, t) in prediction.as_raw().iter().zip(truth.as_raw()) {
        let entry = overlap.entry(*p).or_insert((0, 0));
        if *t != 0 {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }
    let mut mapping: BTreeMap<u32, u32> = BTreeMap::new();
    for (&cluster, &(fg, bg)) in &overlap {
        mapping.insert(cluster, u32::from(fg > bg));
    }
    let remapped = prediction.remap(&mapping);
    binary_iou(&remapped, truth)
}

/// Mean per-class IoU of an unsupervised prediction against a multi-class
/// ground truth, using greedy maximum-overlap matching of predicted clusters
/// to ground-truth classes.
///
/// Each predicted cluster is assigned to at most one ground-truth class and
/// vice versa (one-to-one), in decreasing order of overlap; unmatched
/// ground-truth classes contribute an IoU of 0.
///
/// # Errors
///
/// Returns [`ImagingError::ShapeMismatch`] if the maps differ in size.
pub fn matched_mean_iou(prediction: &LabelMap, truth: &LabelMap) -> Result<f64> {
    check_same_shape(prediction, truth)?;
    let mut pair_overlap: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    let mut pred_sizes: BTreeMap<u32, usize> = BTreeMap::new();
    let mut truth_sizes: BTreeMap<u32, usize> = BTreeMap::new();
    for (p, t) in prediction.as_raw().iter().zip(truth.as_raw()) {
        *pair_overlap.entry((*p, *t)).or_insert(0) += 1;
        *pred_sizes.entry(*p).or_insert(0) += 1;
        *truth_sizes.entry(*t).or_insert(0) += 1;
    }
    // Greedy one-to-one matching by decreasing overlap.
    let mut pairs: Vec<((u32, u32), usize)> = pair_overlap.iter().map(|(k, v)| (*k, *v)).collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut used_pred = std::collections::BTreeSet::new();
    let mut used_truth = std::collections::BTreeSet::new();
    let mut ious: Vec<f64> = Vec::new();
    for ((p, t), inter) in pairs {
        if used_pred.contains(&p) || used_truth.contains(&t) {
            continue;
        }
        used_pred.insert(p);
        used_truth.insert(t);
        let union = pred_sizes[&p] + truth_sizes[&t] - inter;
        ious.push(if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        });
    }
    // Ground-truth classes that never got a partner count as 0.
    let unmatched = truth_sizes
        .keys()
        .filter(|t| !used_truth.contains(t))
        .count();
    ious.extend(std::iter::repeat_n(0.0, unmatched));
    if ious.is_empty() {
        return Ok(1.0);
    }
    Ok(ious.iter().sum::<f64>() / ious.len() as f64)
}

/// Confusion counts of a binary segmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinaryConfusion {
    /// Foreground predicted as foreground.
    pub true_positive: usize,
    /// Background predicted as foreground.
    pub false_positive: usize,
    /// Background predicted as background.
    pub true_negative: usize,
    /// Foreground predicted as background.
    pub false_negative: usize,
}

impl BinaryConfusion {
    /// Precision (`tp / (tp + fp)`), or 1 if nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Recall (`tp / (tp + fn)`), or 1 if there is no positive ground truth.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// IoU computed from the confusion counts.
    pub fn iou(&self) -> f64 {
        let denom = self.true_positive + self.false_positive + self.false_negative;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }
}

/// Computes the binary confusion counts between a prediction and a ground
/// truth (both interpreted as binary foreground masks).
///
/// # Errors
///
/// Returns [`ImagingError::ShapeMismatch`] if the maps differ in size.
pub fn binary_confusion(prediction: &LabelMap, truth: &LabelMap) -> Result<BinaryConfusion> {
    check_same_shape(prediction, truth)?;
    let mut c = BinaryConfusion::default();
    for (p, t) in prediction.as_raw().iter().zip(truth.as_raw()) {
        match (*p != 0, *t != 0) {
            (true, true) => c.true_positive += 1,
            (true, false) => c.false_positive += 1,
            (false, true) => c.false_negative += 1,
            (false, false) => c.true_negative += 1,
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(width: usize, labels: &[u32]) -> LabelMap {
        LabelMap::from_raw(width, labels.len() / width, labels.to_vec()).unwrap()
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = map(4, &[0, 1, 1, 0, 0, 1, 1, 0]);
        assert_eq!(binary_iou(&truth, &truth).unwrap(), 1.0);
        assert_eq!(dice(&truth, &truth).unwrap(), 1.0);
        assert_eq!(pixel_accuracy(&truth, &truth).unwrap(), 1.0);
        assert_eq!(matched_binary_iou(&truth, &truth).unwrap(), 1.0);
    }

    #[test]
    fn disjoint_prediction_scores_zero_iou() {
        let truth = map(4, &[1, 1, 0, 0]);
        let pred = map(4, &[0, 0, 1, 1]);
        assert_eq!(binary_iou(&pred, &truth).unwrap(), 0.0);
        assert_eq!(dice(&pred, &truth).unwrap(), 0.0);
        assert_eq!(pixel_accuracy(&pred, &truth).unwrap(), 0.0);
    }

    #[test]
    fn half_overlap_has_expected_scores() {
        let truth = map(4, &[1, 1, 0, 0]);
        let pred = map(4, &[1, 0, 1, 0]);
        // intersection 1, union 3
        assert!((binary_iou(&pred, &truth).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert!((dice(&pred, &truth).unwrap() - 0.5).abs() < 1e-12);
        assert!((pixel_accuracy(&pred, &truth).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_masks_agree_perfectly() {
        let empty = LabelMap::new(3, 3).unwrap();
        assert_eq!(binary_iou(&empty, &empty).unwrap(), 1.0);
        assert_eq!(dice(&empty, &empty).unwrap(), 1.0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = LabelMap::new(2, 2).unwrap();
        let b = LabelMap::new(3, 2).unwrap();
        assert!(binary_iou(&a, &b).is_err());
        assert!(dice(&a, &b).is_err());
        assert!(pixel_accuracy(&a, &b).is_err());
        assert!(matched_binary_iou(&a, &b).is_err());
        assert!(matched_mean_iou(&a, &b).is_err());
        assert!(binary_confusion(&a, &b).is_err());
    }

    #[test]
    fn matched_iou_is_invariant_to_cluster_id_swaps() {
        let truth = map(4, &[1, 1, 0, 0, 1, 1, 0, 0]);
        // Prediction uses cluster 7 for background and cluster 3 for nuclei.
        let pred = map(4, &[3, 3, 7, 7, 3, 3, 7, 7]);
        assert_eq!(matched_binary_iou(&pred, &truth).unwrap(), 1.0);
        // Inverted cluster ids must give the same score.
        let pred_swapped = map(4, &[7, 7, 3, 3, 7, 7, 3, 3]);
        assert_eq!(matched_binary_iou(&pred_swapped, &truth).unwrap(), 1.0);
    }

    #[test]
    fn matched_iou_handles_imperfect_overlap() {
        let truth = map(4, &[1, 1, 1, 0]);
        let pred = map(4, &[5, 5, 0, 0]);
        // Cluster 5 maps to foreground (overlap 2 vs 0), cluster 0 to background.
        // intersection = 2, union = 3.
        assert!((matched_binary_iou(&pred, &truth).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn matched_mean_iou_matches_clusters_one_to_one() {
        let truth = map(3, &[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        // Same partition, permuted ids.
        let pred = map(3, &[9, 4, 7, 9, 4, 7, 9, 4, 7]);
        assert!((matched_mean_iou(&pred, &truth).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matched_mean_iou_penalises_missing_classes() {
        let truth = map(4, &[0, 0, 1, 2]);
        // Prediction lumps classes 1 and 2 together.
        let pred = map(4, &[0, 0, 1, 1]);
        let score = matched_mean_iou(&pred, &truth).unwrap();
        // class 0 matched perfectly (IoU 1), one of {1,2} gets IoU 0.5, the
        // other is unmatched (0) => mean = (1 + 0.5 + 0) / 3 = 0.5.
        assert!((score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confusion_counts_and_derived_metrics() {
        let truth = map(4, &[1, 1, 0, 0]);
        let pred = map(4, &[1, 0, 1, 0]);
        let c = binary_confusion(&pred, &truth).unwrap();
        assert_eq!(
            c,
            BinaryConfusion {
                true_positive: 1,
                false_positive: 1,
                true_negative: 1,
                false_negative: 1
            }
        );
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.iou() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_confusions_default_to_one() {
        let c = BinaryConfusion::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.iou(), 1.0);
    }

    #[test]
    fn iou_from_confusion_equals_binary_iou() {
        let truth = map(4, &[1, 1, 1, 0, 0, 0, 1, 1]);
        let pred = map(4, &[1, 0, 1, 1, 0, 0, 1, 0]);
        let c = binary_confusion(&pred, &truth).unwrap();
        assert!((c.iou() - binary_iou(&pred, &truth).unwrap()).abs() < 1e-12);
    }
}
