//! Reading and writing of portable anymap (PNM) images.
//!
//! The binary formats P5 (PGM, grayscale) and P6 (PPM, RGB) are supported
//! for both reading and writing, which is enough to inspect every input
//! image and predicted mask produced by the experiment harnesses with any
//! standard image viewer.

use crate::{GrayImage, ImagingError, Result, RgbImage};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Serialises a grayscale image as binary PGM (P5).
pub fn write_pgm<W: Write>(image: &GrayImage, mut writer: W) -> Result<()> {
    writeln!(writer, "P5")?;
    writeln!(writer, "{} {}", image.width(), image.height())?;
    writeln!(writer, "255")?;
    writer.write_all(image.as_raw())?;
    Ok(())
}

/// Serialises an RGB image as binary PPM (P6).
pub fn write_ppm<W: Write>(image: &RgbImage, mut writer: W) -> Result<()> {
    writeln!(writer, "P6")?;
    writeln!(writer, "{} {}", image.width(), image.height())?;
    writeln!(writer, "255")?;
    writer.write_all(image.as_raw())?;
    Ok(())
}

/// Writes a grayscale image to `path` as binary PGM.
///
/// # Errors
///
/// Returns [`ImagingError::Io`] on filesystem errors.
pub fn save_pgm<P: AsRef<Path>>(image: &GrayImage, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_pgm(image, std::io::BufWriter::new(file))
}

/// Writes an RGB image to `path` as binary PPM.
///
/// # Errors
///
/// Returns [`ImagingError::Io`] on filesystem errors.
pub fn save_ppm<P: AsRef<Path>>(image: &RgbImage, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_ppm(image, std::io::BufWriter::new(file))
}

/// Header shared by P5/P6 parsing.
struct PnmHeader {
    magic: String,
    width: usize,
    height: usize,
    max_value: usize,
}

fn parse_header<R: BufRead>(reader: &mut R) -> Result<PnmHeader> {
    // Tokens are whitespace separated; `#` starts a comment until end of line.
    let mut tokens: Vec<String> = Vec::new();
    let mut in_comment = false;
    let mut current = String::new();
    while tokens.len() < 4 {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte)?;
        if n == 0 {
            return Err(ImagingError::ParsePnm {
                message: "unexpected end of file while reading header".to_string(),
            });
        }
        let c = byte[0] as char;
        if in_comment {
            if c == '\n' {
                in_comment = false;
            }
            continue;
        }
        if c == '#' {
            in_comment = true;
            continue;
        }
        if c.is_whitespace() {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        } else {
            current.push(c);
        }
    }
    let parse = |s: &str| -> Result<usize> {
        s.parse().map_err(|_| ImagingError::ParsePnm {
            message: format!("invalid numeric header token `{s}`"),
        })
    };
    Ok(PnmHeader {
        magic: tokens[0].clone(),
        width: parse(&tokens[1])?,
        height: parse(&tokens[2])?,
        max_value: parse(&tokens[3])?,
    })
}

/// Parses a binary PGM (P5) image from a reader.
///
/// # Errors
///
/// Returns [`ImagingError::ParsePnm`] for malformed content and
/// [`ImagingError::Io`] for underlying read failures.
pub fn read_pgm<R: Read>(reader: R) -> Result<GrayImage> {
    let mut reader = BufReader::new(reader);
    let header = parse_header(&mut reader)?;
    if header.magic != "P5" {
        return Err(ImagingError::ParsePnm {
            message: format!("expected magic P5, found {}", header.magic),
        });
    }
    if header.max_value != 255 {
        return Err(ImagingError::ParsePnm {
            message: format!(
                "only 8-bit images are supported, max value {}",
                header.max_value
            ),
        });
    }
    let mut data = vec![0u8; header.width * header.height];
    reader
        .read_exact(&mut data)
        .map_err(|_| ImagingError::ParsePnm {
            message: "pixel payload shorter than declared dimensions".to_string(),
        })?;
    GrayImage::from_raw(header.width, header.height, data)
}

/// Parses a binary PPM (P6) image from a reader.
///
/// # Errors
///
/// Returns [`ImagingError::ParsePnm`] for malformed content and
/// [`ImagingError::Io`] for underlying read failures.
pub fn read_ppm<R: Read>(reader: R) -> Result<RgbImage> {
    let mut reader = BufReader::new(reader);
    let header = parse_header(&mut reader)?;
    if header.magic != "P6" {
        return Err(ImagingError::ParsePnm {
            message: format!("expected magic P6, found {}", header.magic),
        });
    }
    if header.max_value != 255 {
        return Err(ImagingError::ParsePnm {
            message: format!(
                "only 8-bit images are supported, max value {}",
                header.max_value
            ),
        });
    }
    let mut data = vec![0u8; header.width * header.height * 3];
    reader
        .read_exact(&mut data)
        .map_err(|_| ImagingError::ParsePnm {
            message: "pixel payload shorter than declared dimensions".to_string(),
        })?;
    RgbImage::from_raw(header.width, header.height, data)
}

/// Loads a binary PGM from `path`.
///
/// # Errors
///
/// Returns [`ImagingError::Io`] on filesystem errors and
/// [`ImagingError::ParsePnm`] for malformed files.
pub fn load_pgm<P: AsRef<Path>>(path: P) -> Result<GrayImage> {
    read_pgm(std::fs::File::open(path)?)
}

/// Loads a binary PPM from `path`.
///
/// # Errors
///
/// Returns [`ImagingError::Io`] on filesystem errors and
/// [`ImagingError::ParsePnm`] for malformed files.
pub fn load_ppm<P: AsRef<Path>>(path: P) -> Result<RgbImage> {
    read_ppm(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip_preserves_pixels() {
        let img = GrayImage::from_raw(3, 2, vec![0, 50, 100, 150, 200, 255]).unwrap();
        let mut buf = Vec::new();
        write_pgm(&img, &mut buf).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ppm_roundtrip_preserves_pixels() {
        let mut img = RgbImage::new(2, 2).unwrap();
        img.set(0, 0, [1, 2, 3]).unwrap();
        img.set(1, 1, [250, 128, 7]).unwrap();
        let mut buf = Vec::new();
        write_ppm(&img, &mut buf).unwrap();
        let back = read_ppm(buf.as_slice()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn header_comments_are_skipped() {
        let mut payload = b"P5\n# a comment line\n2 1\n255\n".to_vec();
        payload.extend_from_slice(&[7, 9]);
        let img = read_pgm(payload.as_slice()).unwrap();
        assert_eq!(img.get(0, 0).unwrap(), 7);
        assert_eq!(img.get(1, 0).unwrap(), 9);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut buf = Vec::new();
        write_pgm(&GrayImage::new(1, 1).unwrap(), &mut buf).unwrap();
        assert!(matches!(
            read_ppm(buf.as_slice()),
            Err(ImagingError::ParsePnm { .. })
        ));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let payload = b"P5\n4 4\n255\nab".to_vec();
        assert!(matches!(
            read_pgm(payload.as_slice()),
            Err(ImagingError::ParsePnm { .. })
        ));
    }

    #[test]
    fn non_numeric_header_is_rejected() {
        let payload = b"P5\nwide tall\n255\n".to_vec();
        assert!(matches!(
            read_pgm(payload.as_slice()),
            Err(ImagingError::ParsePnm { .. })
        ));
    }

    #[test]
    fn non_8bit_depth_is_rejected() {
        let payload = b"P5\n1 1\n65535\n\x00\x00".to_vec();
        assert!(matches!(
            read_pgm(payload.as_slice()),
            Err(ImagingError::ParsePnm { .. })
        ));
    }

    #[test]
    fn file_save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("seghdc_pnm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pgm");
        let img = GrayImage::from_raw(2, 2, vec![9, 8, 7, 6]).unwrap();
        save_pgm(&img, &path).unwrap();
        let back = load_pgm(&path).unwrap();
        assert_eq!(back, img);
        std::fs::remove_file(&path).ok();
    }
}
