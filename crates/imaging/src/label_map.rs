use crate::{GrayImage, ImagingError, Result};
use std::collections::BTreeMap;

/// A per-pixel integer label map — the output format of every segmenter in
/// this workspace and the storage format for ground-truth masks.
///
/// Label `0` conventionally means *background*; any non-zero value is a
/// cluster or instance identifier. Unsupervised methods emit arbitrary
/// cluster ids, which [`crate::metrics`] later matches against ground-truth
/// classes.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), imaging::ImagingError> {
/// use imaging::LabelMap;
/// let mut map = LabelMap::new(3, 3)?;
/// map.set(1, 1, 2)?;
/// assert_eq!(map.get(1, 1)?, 2);
/// assert_eq!(map.label_histogram().get(&2), Some(&1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelMap {
    width: usize,
    height: usize,
    labels: Vec<u32>,
}

impl LabelMap {
    /// Creates an all-background (label 0) map.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        Ok(Self {
            width,
            height,
            labels: vec![0; width * height],
        })
    }

    /// Wraps an existing row-major label buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::EmptyImage`] for zero dimensions and
    /// [`ImagingError::BufferSizeMismatch`] if `labels.len() != width * height`.
    pub fn from_raw(width: usize, height: usize, labels: Vec<u32>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImagingError::EmptyImage);
        }
        if labels.len() != width * height {
            return Err(ImagingError::BufferSizeMismatch {
                expected: width * height,
                actual: labels.len(),
            });
        }
        Ok(Self {
            width,
            height,
            labels,
        })
    }

    /// Builds a binary (0/1) label map by thresholding a grayscale image:
    /// pixels strictly greater than `threshold` become foreground (label 1).
    pub fn from_threshold(image: &GrayImage, threshold: u8) -> Self {
        let labels = image
            .as_raw()
            .iter()
            .map(|&v| u32::from(v > threshold))
            .collect();
        Self {
            width: image.width(),
            height: image.height(),
            labels,
        }
    }

    /// Map width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Borrow of the underlying row-major label buffer.
    pub fn as_raw(&self) -> &[u32] {
        &self.labels
    }

    /// Mutable borrow of the underlying row-major label buffer.
    pub fn as_raw_mut(&mut self) -> &mut [u32] {
        &mut self.labels
    }

    fn check_bounds(&self, x: usize, y: usize) -> Result<()> {
        if x >= self.width || y >= self.height {
            return Err(ImagingError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        Ok(())
    }

    /// Returns the label at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside the
    /// map.
    pub fn get(&self, x: usize, y: usize) -> Result<u32> {
        self.check_bounds(x, y)?;
        Ok(self.labels[y * self.width + x])
    }

    /// Sets the label at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImagingError::OutOfBounds`] if the coordinate is outside the
    /// map.
    pub fn set(&mut self, x: usize, y: usize, label: u32) -> Result<()> {
        self.check_bounds(x, y)?;
        self.labels[y * self.width + x] = label;
        Ok(())
    }

    /// Returns the set of distinct labels present, with their pixel counts.
    pub fn label_histogram(&self) -> BTreeMap<u32, usize> {
        let mut hist = BTreeMap::new();
        for &label in &self.labels {
            *hist.entry(label).or_insert(0) += 1;
        }
        hist
    }

    /// Number of distinct labels present.
    pub fn distinct_labels(&self) -> usize {
        self.label_histogram().len()
    }

    /// Number of pixels whose label is non-zero (foreground pixels).
    pub fn foreground_pixels(&self) -> usize {
        self.labels.iter().filter(|&&l| l != 0).count()
    }

    /// Converts every non-zero label to `1`, producing an instance-agnostic
    /// binary mask (the representation IoU is computed on in the paper).
    pub fn to_binary(&self) -> LabelMap {
        LabelMap {
            width: self.width,
            height: self.height,
            labels: self.labels.iter().map(|&l| u32::from(l != 0)).collect(),
        }
    }

    /// Returns a copy with the labels remapped through `mapping`. Labels not
    /// present in `mapping` become background (0).
    pub fn remap(&self, mapping: &BTreeMap<u32, u32>) -> LabelMap {
        LabelMap {
            width: self.width,
            height: self.height,
            labels: self
                .labels
                .iter()
                .map(|l| mapping.get(l).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// Whether this map and `other` induce the same **partition** of the
    /// pixels — equal up to a relabelling (the label mapping between them
    /// is functional in both directions).
    ///
    /// This is the equivalence that matters when comparing unsupervised
    /// segmentations, whose cluster ids are arbitrary: the streaming tiled
    /// segmenter's output is checked against the whole-image path with it.
    /// Maps of different shapes are never permutations of each other.
    pub fn is_permutation_of(&self, other: &LabelMap) -> bool {
        if self.width != other.width || self.height != other.height {
            return false;
        }
        let mut forward: BTreeMap<u32, u32> = BTreeMap::new();
        let mut backward: BTreeMap<u32, u32> = BTreeMap::new();
        for (&a, &b) in self.labels.iter().zip(&other.labels) {
            if *forward.entry(a).or_insert(b) != b || *backward.entry(b).or_insert(a) != a {
                return false;
            }
        }
        true
    }

    /// Renders the label map as a grayscale image for inspection: background
    /// stays black and labels are spread evenly over the 8-bit range.
    pub fn to_gray_visualization(&self) -> GrayImage {
        let labels: Vec<u32> = {
            let mut keys: Vec<u32> = self.label_histogram().keys().copied().collect();
            keys.retain(|&l| l != 0);
            keys
        };
        let step = if labels.is_empty() {
            0
        } else {
            255 / labels.len() as u32
        };
        let lut: BTreeMap<u32, u8> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, (255 - step * i as u32).min(255) as u8))
            .collect();
        let data = self
            .labels
            .iter()
            .map(|l| if *l == 0 { 0 } else { lut[l] })
            .collect();
        GrayImage::from_raw(self.width, self.height, data)
            .expect("label map dimensions are valid image dimensions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(matches!(LabelMap::new(0, 4), Err(ImagingError::EmptyImage)));
        assert!(LabelMap::from_raw(2, 2, vec![0; 3]).is_err());
        assert!(LabelMap::from_raw(2, 2, vec![0; 4]).is_ok());
    }

    #[test]
    fn get_set_and_bounds() {
        let mut map = LabelMap::new(2, 2).unwrap();
        map.set(1, 0, 7).unwrap();
        assert_eq!(map.get(1, 0).unwrap(), 7);
        assert!(map.get(2, 0).is_err());
        assert!(map.set(0, 2, 1).is_err());
    }

    #[test]
    fn histogram_counts_every_label() {
        let map = LabelMap::from_raw(2, 2, vec![0, 1, 1, 5]).unwrap();
        let hist = map.label_histogram();
        assert_eq!(hist[&0], 1);
        assert_eq!(hist[&1], 2);
        assert_eq!(hist[&5], 1);
        assert_eq!(map.distinct_labels(), 3);
        assert_eq!(map.foreground_pixels(), 3);
    }

    #[test]
    fn binary_collapse_and_remap() {
        let map = LabelMap::from_raw(2, 2, vec![0, 3, 9, 9]).unwrap();
        assert_eq!(map.to_binary().as_raw(), &[0, 1, 1, 1]);
        let mut mapping = BTreeMap::new();
        mapping.insert(3u32, 1u32);
        mapping.insert(9u32, 2u32);
        assert_eq!(map.remap(&mapping).as_raw(), &[0, 1, 2, 2]);
    }

    #[test]
    fn permutation_equivalence_is_relabelling_not_equality() {
        let map = LabelMap::from_raw(2, 2, vec![0, 1, 1, 2]).unwrap();
        let renamed = LabelMap::from_raw(2, 2, vec![7, 3, 3, 0]).unwrap();
        assert!(map.is_permutation_of(&renamed));
        assert!(renamed.is_permutation_of(&map));
        assert!(map.is_permutation_of(&map));
        // A label split across two labels breaks it in one direction...
        let split = LabelMap::from_raw(2, 2, vec![0, 1, 2, 3]).unwrap();
        assert!(!map.is_permutation_of(&split));
        // ... and a merge breaks it in the other.
        let merged = LabelMap::from_raw(2, 2, vec![0, 0, 0, 2]).unwrap();
        assert!(!map.is_permutation_of(&merged));
        // Shape mismatches are never equivalent.
        let other_shape = LabelMap::from_raw(4, 1, vec![0, 1, 1, 2]).unwrap();
        assert!(!map.is_permutation_of(&other_shape));
    }

    #[test]
    fn threshold_constructor_marks_bright_pixels() {
        let img = GrayImage::from_raw(2, 2, vec![10, 200, 128, 129]).unwrap();
        let map = LabelMap::from_threshold(&img, 128);
        assert_eq!(map.as_raw(), &[0, 1, 0, 1]);
    }

    #[test]
    fn visualization_maps_background_to_black_and_labels_to_distinct_grays() {
        let map = LabelMap::from_raw(3, 1, vec![0, 1, 2]).unwrap();
        let vis = map.to_gray_visualization();
        assert_eq!(vis.get(0, 0).unwrap(), 0);
        let a = vis.get(1, 0).unwrap();
        let b = vis.get(2, 0).unwrap();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn visualization_of_all_background_is_black() {
        let map = LabelMap::new(4, 4).unwrap();
        let vis = map.to_gray_visualization();
        assert!(vis.as_raw().iter().all(|&v| v == 0));
    }
}
