//! Segmentation as a service: start the framed TCP front-end in-process,
//! drive it from a few concurrent clients, and read the telemetry envelope
//! that rides back with every response — cache behaviour, arena high-water
//! mark and the kernel ISA that served the request.
//!
//! Run with: `cargo run --release --example segmentation_service`

use seghdc_server::ResponseBody;
use seghdc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let handle = serve("127.0.0.1:0", ServerConfig::default())?;
    let addr = handle.local_addr();
    println!("serving on {addr}\n");

    // Three synthetic nuclei images of the same shape: the first request
    // pays the codebook build, the rest hit the shared cache.
    let dataset = SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(64, 64), 3, 7)?;
    let config = SegHdcConfig::builder()
        .dimension(2048)
        .beta(4)
        .iterations(5)
        .build()?;

    let workers: Vec<_> = (0..dataset.len())
        .map(|n| {
            let image = dataset.sample(n).expect("sample exists").image;
            let config = config.clone();
            std::thread::spawn(move || {
                let mut client = SegClient::connect(addr).expect("connect");
                let request =
                    WireSegmentRequest::from_image(&config, &image, RequestMode::Auto, 2_000);
                client.segment(&request).expect("exchange")
            })
        })
        .collect();

    for (n, worker) in workers.into_iter().enumerate() {
        let response = worker.join().expect("client thread");
        match response.body {
            ResponseBody::Labels {
                width,
                height,
                telemetry,
                ..
            } => {
                println!(
                    "image {n}: {width}x{height} labels in {:.2} ms \
                     (queued {:.2} ms) — cache {} hit(s) / {} miss(es), \
                     {} KiB resident, kernel {}",
                    response.service_us as f64 / 1e3,
                    response.queue_wait_us as f64 / 1e3,
                    telemetry.cache_hits,
                    telemetry.cache_misses,
                    telemetry.cache_bytes / 1024,
                    telemetry.kernel_isa,
                );
            }
            ResponseBody::Error { status, message } => {
                println!("image {n}: {status:?}: {message}");
            }
        }
    }

    handle.shutdown();
    println!("\nserver drained and shut down");
    Ok(())
}
