//! Trains the Kim et al. CNN baseline on one synthetic image and prints the
//! loss curve and the evolution of the number of self-labels — a look inside
//! the method SegHDC is compared against.
//!
//! Run with: `cargo run --release --example baseline_training`

use seghdc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::dsb2018_like().scaled(64, 64);
    let dataset = SyntheticDataset::new(profile, 5, 1)?;
    let sample = dataset.sample(0)?;

    let config = KimConfig {
        feature_channels: 24,
        max_iterations: 40,
        ..KimConfig::tiny()
    };
    println!(
        "training the unsupervised CNN baseline on {} ({}x{}x{})",
        sample.name,
        sample.image.width(),
        sample.image.height(),
        sample.image.channels()
    );
    println!(
        "network: {} blocks, {} feature channels, lr {}, momentum {}\n",
        config.conv_blocks, config.feature_channels, config.learning_rate, config.momentum
    );

    let start = std::time::Instant::now();
    let outcome = KimSegmenter::new(config)?.segment(&sample.image)?;
    let elapsed = start.elapsed();

    println!("iteration  combined loss");
    for (iteration, loss) in outcome.losses.iter().enumerate().step_by(5) {
        println!("{:>9}  {loss:>13.4}", iteration + 1);
    }
    if let Some(last) = outcome.losses.last() {
        println!("{:>9}  {last:>13.4}", outcome.iterations_run);
    }

    let iou = metrics::matched_binary_iou(&outcome.label_map, &sample.ground_truth.to_binary())?;
    println!(
        "\nfinished after {} iterations in {elapsed:.2?}; {} labels remain; IoU {iou:.4}",
        outcome.iterations_run, outcome.final_label_count
    );
    println!(
        "the network has {} parameters — compare with SegHDC, which trains nothing",
        outcome.parameter_count
    );
    Ok(())
}
