//! Quickstart: segment one synthetic microscopy image with SegHDC and print
//! the IoU against the exact ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use seghdc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a DSB2018-style synthetic nuclei image (96x96, 3 channels)
    //    together with its ground-truth mask.
    let profile = DatasetProfile::dsb2018_like().scaled(96, 96);
    let dataset = SyntheticDataset::new(profile, 42, 1)?;
    let sample = dataset.sample(0)?;
    println!(
        "generated {} ({}x{}x{}, {} nuclei pixels)",
        sample.name,
        sample.image.width(),
        sample.image.height(),
        sample.image.channels(),
        sample.ground_truth.foreground_pixels()
    );

    // 2. Configure SegHDC. The defaults follow the paper; we shrink the
    //    hypervector dimension so the example runs in a second.
    let config = SegHdcConfig::builder()
        .dimension(2000)
        .beta(8)
        .iterations(5)
        .build()?;
    let engine = SegEngine::new(config)?;

    // 3. Segment and score. The engine plans whole-image vs tiled execution
    //    itself; a 96x96 request fits the matrix budget and runs whole.
    let report = engine.run(&SegmentRequest::image(&sample.image))?;
    let segmentation = &report.outputs[0];
    let iou =
        metrics::matched_binary_iou(&segmentation.label_map, &sample.ground_truth.to_binary())?;
    println!(
        "SegHDC finished in {:.2?} (encode {:.2?}, cluster {:.2?})",
        segmentation.total_time(),
        segmentation.encode_time,
        segmentation.cluster_time
    );
    println!("IoU against the ground truth: {iou:.4}");

    // 4. Write the input and the predicted mask next to the binary so they
    //    can be inspected with any image viewer.
    let out_dir = std::path::PathBuf::from("target/quickstart");
    std::fs::create_dir_all(&out_dir)?;
    imaging::pnm::save_pgm(&sample.image.to_gray(), out_dir.join("input.pgm"))?;
    imaging::pnm::save_pgm(
        &segmentation.label_map.to_gray_visualization(),
        out_dir.join("prediction.pgm"),
    )?;
    println!(
        "wrote input.pgm and prediction.pgm to {}",
        out_dir.display()
    );
    Ok(())
}
