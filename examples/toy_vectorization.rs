//! The Fig. 1 toy example: vectorise a 3×3 binary image into 3-D space and
//! show that white and black pixels land in two separate regions.
//!
//! Run with: `cargo run --release --example toy_vectorization`

use seghdc::toy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 3x3 binary image (true = white).
    let image = [true, true, false, true, true, false, false, false, true];
    println!("input 3x3 image (W = white, B = black):");
    for row in 0..3 {
        let cells: Vec<&str> = (0..3)
            .map(|col| if image[row * 3 + col] { "W" } else { "B" })
            .collect();
        println!("  {}", cells.join(" "));
    }

    let pixels = toy::vectorize_toy_image(&image)?;
    println!("\nvectorised pixels (position XOR colour, summed element-wise):");
    for pixel in &pixels {
        println!(
            "  p({}, {})  {}  -> ({}, {}, {})",
            pixel.row,
            pixel.col,
            if pixel.white { "white" } else { "black" },
            pixel.coordinates[0],
            pixel.coordinates[1],
            pixel.coordinates[2]
        );
    }

    // Average intra-colour vs. inter-colour distance, the quantitative
    // version of the "two separate clouds" picture in Fig. 1.
    let mut same = Vec::new();
    let mut different = Vec::new();
    for i in 0..pixels.len() {
        for j in (i + 1)..pixels.len() {
            let distance = toy::toy_distance(&pixels[i], &pixels[j]);
            if pixels[i].white == pixels[j].white {
                same.push(distance);
            } else {
                different.push(distance);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean distance between same-colour pixels:      {:.3}",
        mean(&same)
    );
    println!(
        "mean distance between different-colour pixels: {:.3}",
        mean(&different)
    );
    println!("same-colour pixels are mapped closer together, as in Fig. 1 of the paper");
    Ok(())
}
