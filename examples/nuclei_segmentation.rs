//! Nuclei segmentation across the three dataset profiles of the paper:
//! runs SegHDC and the CNN baseline on a few synthetic images per profile
//! and prints the mean IoU of each method — a miniature version of Table I.
//!
//! Run with: `cargo run --release --example nuclei_segmentation`

use seghdc_suite::prelude::*;

fn mean_iou<F>(
    dataset: &SyntheticDataset,
    samples: usize,
    mut segment: F,
) -> Result<f64, Box<dyn std::error::Error>>
where
    F: FnMut(&DynamicImage) -> Result<LabelMap, Box<dyn std::error::Error>>,
{
    let mut total = 0.0;
    for index in 0..samples {
        let sample = dataset.sample(index)?;
        let prediction = segment(&sample.image)?;
        total += metrics::matched_binary_iou(&prediction, &sample.ground_truth.to_binary())?;
    }
    Ok(total / samples as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples = 2;
    let profiles = [
        (DatasetProfile::bbbc005_like().scaled(72, 72), 2usize),
        (DatasetProfile::dsb2018_like().scaled(72, 72), 2),
        (DatasetProfile::monuseg_like().scaled(72, 72), 3),
    ];

    println!(
        "{:<16} {:>12} {:>12}",
        "Dataset", "Baseline IoU", "SegHDC IoU"
    );
    for (profile, clusters) in profiles {
        let dataset = SyntheticDataset::new(profile.clone(), 7, samples)?;

        let baseline_config = KimConfig {
            feature_channels: 24,
            max_iterations: 30,
            ..KimConfig::tiny()
        };
        let baseline_iou = mean_iou(&dataset, samples, |image| {
            Ok(KimSegmenter::new(baseline_config.clone())?
                .segment(image)?
                .label_map)
        })?;

        let seghdc_config = SegHdcConfig::builder()
            .dimension(2000)
            .beta(6)
            .clusters(clusters)
            .iterations(5)
            .build()?;
        // One engine per dataset: the codebook cache makes every image
        // after the first skip the codebook build.
        let engine = SegEngine::new(seghdc_config)?;
        let seghdc_iou = mean_iou(&dataset, samples, |image| {
            let mut report = engine.run(&SegmentRequest::image(image))?;
            Ok(report.outputs.remove(0).label_map)
        })?;

        println!(
            "{:<16} {:>12.4} {:>12.4}",
            profile.name.trim_end_matches("-like"),
            baseline_iou,
            seghdc_iou
        );
    }
    println!("\nFor the full Table I reproduction run:");
    println!("  cargo run -p seghdc-bench --release --bin table1");
    Ok(())
}
