//! Streaming tiled segmentation of a full microscopy scan through the
//! engine planner.
//!
//! Generates a synthetic 1024×1024 scan (the workload class whose
//! whole-image hypervector matrix does not fit on the paper's target edge
//! devices) and hands it to a `SegEngine` with an edge-sized matrix budget:
//! the planner picks streaming tiled execution on its own, streams the scan
//! one halo-padded tile at a time, and the report carries the stitched
//! quality plus the engine's cache/arena telemetry.
//!
//! Run with: `cargo run --release --example large_scan`

use seghdc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = 2048;
    let profile = DatasetProfile::microscopy_scan_like();
    println!(
        "generating a {}x{} synthetic microscopy scan...",
        profile.width, profile.height
    );
    let generator = NucleiImageGenerator::new(profile, 2023)?;
    let sample = generator.generate(0)?;

    let config = SegHdcConfig::builder()
        .dimension(dimension)
        .iterations(3)
        .beta(16)
        .build()?;
    // An edge-device-sized budget: the 1024x1024 whole-image matrix
    // (~268 MB at d = 2048) is far over it, so the planner goes tiled.
    let engine = SegEngine::builder(config)
        .matrix_budget_bytes(8 << 20)
        .auto_tile(TileConfig::square(256, 8)?)
        .build()?;

    let request = SegmentRequest::image(&sample.image);
    let plan = engine.plan(&request)?;
    println!(
        "planner: whole-image matrix would be {:.1} MB (budget {:.1} MB) -> {} of {} image(s) tiled",
        plan.decisions[0].whole_matrix_bytes as f64 / 1e6,
        engine.options().matrix_budget_bytes as f64 / 1e6,
        plan.tiled_count(),
        plan.decisions.len()
    );

    let report = engine.run(&request)?;
    let result = report.single();
    let ExecutedMode::Tiled {
        tiles_x,
        tiles_y,
        stitched_labels,
    } = result.mode
    else {
        unreachable!("the plan chose tiled execution");
    };

    let iou = metrics::matched_binary_iou(&result.label_map, &sample.ground_truth.to_binary())?;
    let telemetry = report.telemetry;
    let whole_image_bytes = sample.image.pixel_count() * dimension.div_ceil(64) * 8;
    println!();
    println!(
        "tiles processed:       {} ({tiles_x}x{tiles_y} grid)",
        tiles_x * tiles_y
    );
    println!("stitched label groups: {stitched_labels}");
    println!("IoU vs ground truth:   {iou:.4}");
    println!(
        "peak matrix memory:    {:.1} MB (whole-image path: {:.1} MB, {:.0}x more)",
        telemetry.peak_matrix_bytes as f64 / 1e6,
        whole_image_bytes as f64 / 1e6,
        whole_image_bytes as f64 / telemetry.peak_matrix_bytes as f64
    );
    println!(
        "codebook cache:        {} hit(s), {} miss(es), {} eviction(s), {:.1} MB resident",
        telemetry.cache_hits,
        telemetry.cache_misses,
        telemetry.cache_evictions,
        telemetry.cache_bytes as f64 / 1e6
    );
    println!(
        "backend:               {} (kernel ISA: {})",
        telemetry.backend, telemetry.kernel_isa
    );
    println!(
        "time: encode {:.1}s, cluster {:.1}s, stitch {:.2}s",
        result.encode_time.as_secs_f64(),
        result.cluster_time.as_secs_f64(),
        result.stitch_time.as_secs_f64()
    );
    Ok(())
}
