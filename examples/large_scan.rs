//! Streaming tiled segmentation of a full microscopy scan.
//!
//! Generates a synthetic 1024×1024 scan (the workload class whose
//! whole-image hypervector matrix does not fit on the paper's target edge
//! devices), streams it through `segment_streaming` one halo-padded tile at
//! a time, and reports the stitched quality plus the measured peak matrix
//! memory against what the whole-image path would have allocated.
//!
//! Run with: `cargo run --release --example large_scan`

use seghdc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dimension = 2048;
    let profile = DatasetProfile::microscopy_scan_like();
    println!(
        "generating a {}x{} synthetic microscopy scan...",
        profile.width, profile.height
    );
    let generator = NucleiImageGenerator::new(profile, 2023)?;
    let sample = generator.generate(0)?;

    let config = SegHdcConfig::builder()
        .dimension(dimension)
        .iterations(3)
        .beta(16)
        .build()?;
    let pipeline = SegHdc::new(config)?;
    let tiles = TileConfig::square(256, 8)?;

    println!(
        "streaming through {}x{} tiles with a {}-pixel halo...",
        tiles.tile_width, tiles.tile_height, tiles.halo
    );
    let result = pipeline.segment_streaming(&ImageView::full(&sample.image), &tiles)?;

    let iou = metrics::matched_binary_iou(&result.label_map, &sample.ground_truth.to_binary())?;
    let whole_image_bytes = sample.image.pixel_count() * dimension.div_ceil(64) * 8;
    println!();
    println!(
        "tiles processed:       {} ({}x{} grid)",
        result.tile_count(),
        result.tiles_x,
        result.tiles_y
    );
    println!("stitched label groups: {}", result.stitched_labels);
    println!("IoU vs ground truth:   {iou:.4}");
    println!(
        "peak matrix memory:    {:.1} MB (whole-image path: {:.1} MB, {:.0}x more)",
        result.peak_matrix_bytes as f64 / 1e6,
        whole_image_bytes as f64 / 1e6,
        whole_image_bytes as f64 / result.peak_matrix_bytes as f64
    );
    println!(
        "time: encode {:.1}s, cluster {:.1}s, stitch {:.2}s",
        result.encode_time.as_secs_f64(),
        result.cluster_time.as_secs_f64(),
        result.stitch_time.as_secs_f64()
    );
    Ok(())
}
