//! Batch segmentation: run SegHDC over a whole directory-worth of images
//! with one engine request, codebooks shared through the persistent cache
//! and images processed in parallel.
//!
//! Run with: `cargo run --release --example batch_segmentation`

use seghdc_suite::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small batch of DSB2018-style synthetic microscopy
    //    images, all 64x64 (the common case: one acquisition campaign, one
    //    sensor, one shape).
    let dataset = SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(64, 64), 11, 6)?;
    let images: Vec<DynamicImage> = (0..dataset.len())
        .map(|i| dataset.sample(i).map(|s| s.image))
        .collect::<Result<_, _>>()?;
    let truths: Vec<LabelMap> = (0..dataset.len())
        .map(|i| dataset.sample(i).map(|s| s.ground_truth.to_binary()))
        .collect::<Result<_, _>>()?;

    let config = SegHdcConfig::builder()
        .dimension(2000)
        .beta(8)
        .iterations(5)
        .build()?;
    let engine = SegEngine::new(config)?;

    // 2. Per-image requests: the first call builds the codebooks, every
    //    call after that hits the engine's persistent codebook cache.
    let start = Instant::now();
    let mut singles = Vec::with_capacity(images.len());
    for image in &images {
        let mut report = engine.run(&SegmentRequest::image(image))?;
        singles.push(report.outputs.remove(0));
    }
    let per_image_time = start.elapsed();

    // 3. One batch request: the images run in parallel through the same
    //    engine. The label maps are byte-identical to the per-image calls.
    let start = Instant::now();
    let batch = engine.run(&SegmentRequest::batch(&images))?;
    let batch_time = start.elapsed();

    let mut iou_sum = 0.0;
    for ((single, batched), truth) in singles.iter().zip(&batch.outputs).zip(&truths) {
        assert_eq!(
            single.label_map, batched.label_map,
            "batch output must match per-image output exactly"
        );
        iou_sum += metrics::matched_binary_iou(&batched.label_map, truth)?;
    }

    let telemetry = batch.telemetry;
    println!("segmented {} images of 64x64", images.len());
    println!("  per-image requests: {per_image_time:.2?}");
    println!("  one batch request:  {batch_time:.2?}");
    println!(
        "  mean IoU {:.4} (outputs verified byte-identical)",
        iou_sum / batch.outputs.len() as f64
    );
    println!(
        "  codebook cache: {} hits / {} misses ({} entries, {:.1} KB resident)",
        telemetry.cache_hits,
        telemetry.cache_misses,
        telemetry.cache_entries,
        telemetry.cache_bytes as f64 / 1e3
    );
    Ok(())
}
