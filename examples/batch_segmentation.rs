//! Batch segmentation: run SegHDC over a whole directory-worth of images
//! with one call, reusing codebooks across images of the same shape and
//! processing images in parallel.
//!
//! Run with: `cargo run --release --example batch_segmentation`

use seghdc_suite::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small batch of DSB2018-style synthetic microscopy
    //    images, all 64x64 (the common case: one acquisition campaign, one
    //    sensor, one shape).
    let dataset = SyntheticDataset::new(DatasetProfile::dsb2018_like().scaled(64, 64), 11, 6)?;
    let images: Vec<DynamicImage> = (0..dataset.len())
        .map(|i| dataset.sample(i).map(|s| s.image))
        .collect::<Result<_, _>>()?;
    let truths: Vec<LabelMap> = (0..dataset.len())
        .map(|i| dataset.sample(i).map(|s| s.ground_truth.to_binary()))
        .collect::<Result<_, _>>()?;

    let config = SegHdcConfig::builder()
        .dimension(2000)
        .beta(8)
        .iterations(5)
        .build()?;
    let pipeline = SegHdc::new(config)?;

    // 2. Per-image calls: every call rebuilds the position/colour codebooks
    //    for the image shape.
    let start = Instant::now();
    let singles: Vec<Segmentation> = images
        .iter()
        .map(|image| pipeline.segment(image))
        .collect::<Result<_, _>>()?;
    let per_image_time = start.elapsed();

    // 3. One batch call: codebooks are built once per shape and the images
    //    run in parallel. The label maps are byte-identical to the
    //    per-image calls.
    let start = Instant::now();
    let batch = pipeline.segment_batch(&images)?;
    let batch_time = start.elapsed();

    let mut iou_sum = 0.0;
    for ((single, batched), truth) in singles.iter().zip(&batch).zip(&truths) {
        assert_eq!(
            single.label_map, batched.label_map,
            "batch output must match per-image output exactly"
        );
        iou_sum += metrics::matched_binary_iou(&batched.label_map, truth)?;
    }

    println!("segmented {} images of 64x64", images.len());
    println!("  per-image calls: {per_image_time:.2?}");
    println!("  one batch call:  {batch_time:.2?}");
    println!(
        "  mean IoU {:.4} (outputs verified byte-identical)",
        iou_sum / batch.len() as f64
    );
    Ok(())
}
