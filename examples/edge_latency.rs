//! Edge-latency estimation: uses the Raspberry Pi 4 cost model to compare
//! SegHDC and the CNN baseline on the paper's two Table II image shapes,
//! including the baseline's out-of-memory failure on the larger image.
//!
//! Run with: `cargo run --release --example edge_latency`

use seghdc_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pi = DeviceProfile::raspberry_pi_4();
    println!(
        "device: {} ({} cores @ {:.1} GHz, {:.1} GB usable)",
        pi.name,
        pi.cores,
        pi.clock_hz / 1e9,
        pi.usable_memory_bytes as f64 / 1e9
    );
    println!();
    println!(
        "{:<34} {:>16} {:>18}",
        "Workload", "peak memory", "est. latency"
    );

    let workloads = vec![
        Workload::cnn_unsupervised(320, 256, 3, 100, 2, 1000),
        Workload::seghdc(320, 256, 3, 800, 2, 3),
        Workload::cnn_unsupervised(696, 520, 1, 100, 2, 1000),
        Workload::seghdc(696, 520, 1, 2000, 2, 3),
    ];
    for workload in &workloads {
        let memory = format!("{:.2} GB", workload.peak_memory_bytes as f64 / 1e9);
        let latency = match pi.estimate(workload) {
            Ok(estimate) => format!("{:.1} s", estimate.total().as_secs_f64()),
            Err(edge_device::DeviceError::OutOfMemory { .. }) => "out of memory".to_string(),
            Err(err) => return Err(err.into()),
        };
        println!("{:<34} {:>16} {:>18}", workload.name, memory, latency);
    }

    println!();
    let cnn = &workloads[0];
    let seghdc = &workloads[1];
    println!(
        "model speedup of SegHDC over the baseline on 256x320x3: {:.0}x (paper: 319.9x)",
        pi.speedup(cnn, seghdc)?
    );
    println!("the baseline on 520x696x1 exceeds the Pi's memory, as in the paper's 'x*' entry");
    Ok(())
}
