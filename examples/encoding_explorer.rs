//! Encoding explorer: prints the Hamming-distance structure of the four
//! position-encoding variants (Fig. 3) and of the Manhattan colour encoder,
//! so the effect of `α`, `β` and the half-split construction can be seen
//! directly.
//!
//! Run with: `cargo run --release --example encoding_explorer`

use hdc::HdcRng;
use seghdc::{ColorEncoder, ColorEncoding, PositionEncoder, PositionEncoding};

fn show_position_variant(
    title: &str,
    encoding: PositionEncoding,
    alpha: f64,
    beta: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = HdcRng::seed_from(11);
    let encoder = PositionEncoder::new(encoding, 8192, 6, 6, alpha, beta, &mut rng)?;
    println!("{title}");
    println!(
        "  flip units: row {} bits, column {} bits",
        encoder.row_flip_unit(),
        encoder.col_flip_unit()
    );
    let grid = encoder.distance_grid(6)?;
    for row in grid {
        let cells: Vec<String> = row.iter().map(|d| format!("{d:>6}")).collect();
        println!("  {}", cells.join(""));
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Hamming distance from position (0,0) to every position (i,j), d = 8192\n");
    show_position_variant(
        "uniform (shared flip sites)",
        PositionEncoding::Uniform,
        1.0,
        1,
    )?;
    show_position_variant(
        "Manhattan (half-split flips)",
        PositionEncoding::Manhattan,
        1.0,
        1,
    )?;
    show_position_variant(
        "decay Manhattan (alpha = 0.5)",
        PositionEncoding::DecayManhattan,
        0.5,
        1,
    )?;
    show_position_variant(
        "block decay Manhattan (alpha = 0.5, beta = 2)",
        PositionEncoding::BlockDecayManhattan,
        0.5,
        2,
    )?;
    show_position_variant("random (RPos ablation)", PositionEncoding::Random, 1.0, 1)?;

    println!("colour encoder distances (single channel, d = 4096):");
    let mut rng = HdcRng::seed_from(12);
    let colors = ColorEncoder::new(ColorEncoding::Manhattan, 4096, 1, 1, &mut rng)?;
    println!("  flip unit uc = {} bits", colors.flip_unit());
    for (a, b) in [(0u8, 16u8), (0, 64), (0, 128), (0, 255), (100, 110)] {
        println!(
            "  distance(value {a:>3}, value {b:>3}) = {:>5} bits",
            colors.intensity_distance(a, b)?
        );
    }
    Ok(())
}
